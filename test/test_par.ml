(* Determinism pins for the Ssta_par domain pool: chunked scheduling must
   produce bit-identical results for every domain count, on adversarial
   chunk sizes (0 - clamped to 1 - single-element, prime, and larger than
   the item count), and the parallel MC / criticality engines built on it
   must agree with their sequential (domains = 1) path exactly. *)

module Par = Ssta_par.Par
module Rng = Ssta_gauss.Rng
module Build = Ssta_timing.Build
module Flat_mc = Ssta_mc.Flat_mc
module Allpairs_mc = Ssta_mc.Allpairs_mc
module Sampler = Ssta_mc.Sampler

let domain_counts = [ 1; 2; 3; 8 ]
let adversarial_chunks n = [ 0; 1; 7; n + 3 ]

(* NaN-proof float comparison: unreachable pairs are nan on both sides and
   must compare equal. *)
let bits = Int64.bits_of_float
let bits2 m = Array.map (Array.map bits) m

(* --- map_chunks equals the sequential fold ----------------------------- *)

let qcheck_map_chunks =
  let prop n =
    let items = Array.init n (fun i -> (i * 7919) mod 257) in
    List.for_all
      (fun chunk ->
        (* Sequential reference: partition [0, n) in index order and sum
           each slice by hand. *)
        let reference =
          Array.init (Par.n_chunks ~chunk n) (fun c ->
              let lo, hi = Par.chunk_bounds ~chunk ~n c in
              let acc = ref 0 in
              for i = lo to hi - 1 do
                acc := !acc + items.(i)
              done;
              (lo, hi, !acc))
        in
        List.for_all
          (fun domains ->
            let got =
              Par.map_chunks ~domains ~chunk ~n (fun ~chunk:_ ~lo ~hi ->
                  let acc = ref 0 in
                  for i = lo to hi - 1 do
                    acc := !acc + items.(i)
                  done;
                  (lo, hi, !acc))
            in
            got = reference)
          domain_counts)
      (adversarial_chunks n)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"map_chunks = sequential fold"
       QCheck.(int_range 0 200)
       prop)

let qcheck_chunk_partition =
  let prop (n, chunk) =
    let k = Par.n_chunks ~chunk n in
    let ranges = List.init k (fun c -> Par.chunk_bounds ~chunk ~n c) in
    (* The ranges tile [0, n) exactly, in order, with no empty chunk. *)
    let rec check expected = function
      | [] -> expected = n
      | (lo, hi) :: rest -> lo = expected && hi > lo && check hi rest
    in
    (n = 0 && k = 0) || check 0 ranges
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"chunk layout tiles [0, n)"
       QCheck.(pair (int_range 0 500) (int_range 0 60))
       prop)

let test_fold_chunks_order () =
  (* merge is applied strictly in chunk-index order. *)
  List.iter
    (fun domains ->
      let order =
        Par.fold_chunks ~domains ~chunk:3 ~n:20 ~init:[]
          ~merge:(fun acc c -> c :: acc)
          (fun ~chunk ~lo:_ ~hi:_ -> chunk)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "chunk merge order at %d domains" domains)
        [ 6; 5; 4; 3; 2; 1; 0 ] order)
    domain_counts

let test_run_tasks_scratch_and_exn () =
  (* Per-worker scratch is built once per worker; task exceptions surface
     after the join barrier. *)
  let builds = Atomic.make 0 in
  Par.run_tasks ~domains:3 ~n_tasks:11
    ~init:(fun () -> Atomic.incr builds)
    ~task:(fun () _ -> ())
    ();
  Alcotest.(check bool)
    "at most one scratch per worker" true
    (Atomic.get builds <= 3);
  Alcotest.(check bool)
    "task exception propagates" true
    (try
       Par.run_tasks ~domains:2 ~n_tasks:8
         ~init:(fun () -> ())
         ~task:(fun () i -> if i = 5 then failwith "boom")
         ();
       false
     with Failure _ -> true)

(* --- RNG substream family --------------------------------------------- *)

let test_rng_stream () =
  let root = Rng.create ~seed:123 in
  let s0 = Rng.stream ~seed:123 ~index:0 in
  for _ = 1 to 32 do
    Alcotest.(check int64)
      "stream 0 = root stream" (Rng.bits64 root) (Rng.bits64 s0)
  done;
  let a = Rng.bits64 (Rng.stream ~seed:123 ~index:1) in
  let b = Rng.bits64 (Rng.stream ~seed:123 ~index:2) in
  let a' = Rng.bits64 (Rng.stream ~seed:123 ~index:1) in
  Alcotest.(check int64) "stream index reproducible" a a';
  Alcotest.(check bool) "streams decorrelated" true (a <> b)

(* --- MC engines: bit-identical across domain counts -------------------- *)

let ctx =
  lazy (Sampler.ctx_of_build (Build.characterize (Ssta_circuit.Iscas.build "c432")))

(* 700 iterations = 3 chunks: exercises both the substream derivation and
   the chunk merge, unlike the single-chunk 250-iteration goldens. *)
let test_flat_mc_domains () =
  let ctx = Lazy.force ctx in
  let r1 = Flat_mc.run ~domains:1 ~iterations:700 ~seed:9 ctx in
  List.iter
    (fun d ->
      let rd = Flat_mc.run ~domains:d ~iterations:700 ~seed:9 ctx in
      Alcotest.(check bool)
        (Printf.sprintf "flat delays bit-equal at %d domains" d)
        true
        (Array.map bits r1.Flat_mc.delays = Array.map bits rd.Flat_mc.delays))
    domain_counts

let test_allpairs_mc_domains () =
  let ctx = Lazy.force ctx in
  let r1 = Allpairs_mc.run ~domains:1 ~iterations:700 ~seed:5 ctx in
  List.iter
    (fun d ->
      let rd = Allpairs_mc.run ~domains:d ~iterations:700 ~seed:5 ctx in
      Alcotest.(check bool)
        (Printf.sprintf "allpairs means bit-equal at %d domains" d)
        true
        (bits2 r1.Allpairs_mc.means = bits2 rd.Allpairs_mc.means);
      Alcotest.(check bool)
        (Printf.sprintf "allpairs stds bit-equal at %d domains" d)
        true
        (bits2 r1.Allpairs_mc.stds = bits2 rd.Allpairs_mc.stds);
      Alcotest.(check bool)
        (Printf.sprintf "allpairs reachability equal at %d domains" d)
        true
        (r1.Allpairs_mc.reachable = rd.Allpairs_mc.reachable))
    domain_counts

(* --- Criticality and extraction: bit-identical models ------------------ *)

let test_criticality_domains () =
  let b = Build.characterize (Ssta_circuit.Iscas.build "c432") in
  let module C = Hier_ssta.Criticality in
  List.iter
    (fun exact ->
      let r1 =
        C.compute ~exact ~domains:1 ~delta:0.05 b.Build.graph
          ~forms:b.Build.forms
      in
      List.iter
        (fun d ->
          let rd =
            C.compute ~exact ~domains:d ~delta:0.05 b.Build.graph
              ~forms:b.Build.forms
          in
          let tag =
            Printf.sprintf "(exact=%b, %d domains)" exact d
          in
          Alcotest.(check bool)
            ("keep bit-equal " ^ tag) true (r1.C.keep = rd.C.keep);
          Alcotest.(check bool)
            ("cm bit-equal " ^ tag)
            true
            (Array.map bits r1.C.cm = Array.map bits rd.C.cm);
          Alcotest.(check int)
            ("exact_evals equal " ^ tag) r1.C.exact_evals rd.C.exact_evals;
          Alcotest.(check int)
            ("screened equal " ^ tag) r1.C.screened_pairs rd.C.screened_pairs)
        domain_counts)
    [ false; true ]

let test_extract_domains () =
  let b = Build.characterize (Ssta_circuit.Iscas.build "c432") in
  let module T = Hier_ssta.Timing_model in
  let m1 = Hier_ssta.Extract.extract ~domains:1 b in
  List.iter
    (fun d ->
      let md = Hier_ssta.Extract.extract ~domains:d b in
      Alcotest.(check bool)
        (Printf.sprintf "model forms bit-equal at %d domains" d)
        true
        (m1.T.forms = md.T.forms);
      Alcotest.(check int)
        (Printf.sprintf "model edges equal at %d domains" d)
        m1.T.stats.T.model_edges md.T.stats.T.model_edges;
      let io1 = T.io_delays ~domains:1 m1 in
      let iod = T.io_delays ~domains:d md in
      Alcotest.(check bool)
        (Printf.sprintf "io_delays bit-equal at %d domains" d)
        true (io1 = iod))
    domain_counts

let suites =
  [
    ( "par.pool",
      [
        qcheck_map_chunks;
        qcheck_chunk_partition;
        Alcotest.test_case "fold_chunks merge order" `Quick
          test_fold_chunks_order;
        Alcotest.test_case "run_tasks scratch + exceptions" `Quick
          test_run_tasks_scratch_and_exn;
        Alcotest.test_case "rng substream family" `Quick test_rng_stream;
      ] );
    ( "par.engines",
      [
        Alcotest.test_case "flat mc across domains" `Slow
          test_flat_mc_domains;
        Alcotest.test_case "allpairs mc across domains" `Slow
          test_allpairs_mc_domains;
        Alcotest.test_case "criticality across domains" `Slow
          test_criticality_domains;
        Alcotest.test_case "extraction across domains" `Slow
          test_extract_domains;
      ] );
  ]
