(* Tests for the extension modules: model serialization, variance
   diagnostics, hold-side (min) analysis, corner comparison, path reports
   and Graphviz export. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let build = lazy (Build.characterize (Ssta_circuit.Iscas.build "c432"))
let model = lazy (H.Extract.extract ~delta:0.05 (Lazy.force build))

(* ------------------------------------------------------------------ *)
(* Model_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_model_io_roundtrip () =
  let m = Lazy.force model in
  let text = H.Model_io.to_string m in
  let m' = H.Model_io.of_string text in
  Alcotest.(check string) "name" m.H.Timing_model.name m'.H.Timing_model.name;
  Alcotest.(check int)
    "edges"
    (Tgraph.n_edges m.H.Timing_model.graph)
    (Tgraph.n_edges m'.H.Timing_model.graph);
  Alcotest.(check int)
    "vertices"
    (Tgraph.n_vertices m.H.Timing_model.graph)
    (Tgraph.n_vertices m'.H.Timing_model.graph);
  (* Forms must round-trip bit-exactly. *)
  Array.iteri
    (fun e f ->
      if not (Form.equal ~tol:0.0 f m'.H.Timing_model.forms.(e)) then
        Alcotest.fail (Printf.sprintf "edge %d form drifted" e))
    m.H.Timing_model.forms;
  (* And so must the serialized text itself (idempotence). *)
  Alcotest.(check string)
    "stable serialization" text
    (H.Model_io.to_string m')

let test_model_io_preserves_io_delays () =
  let m = Lazy.force model in
  let m' = H.Model_io.of_string (H.Model_io.to_string m) in
  let io = H.Timing_model.io_delays m in
  let io' = H.Timing_model.io_delays m' in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j f ->
          match (f, io'.(i).(j)) with
          | None, None -> ()
          | Some a, Some b ->
              if not (Form.equal ~tol:0.0 a b) then
                Alcotest.fail (Printf.sprintf "io delay (%d,%d) drifted" i j)
          | _ -> Alcotest.fail "connectivity drifted")
        row)
    io

let test_model_io_file () =
  let m = Lazy.force model in
  let path = Filename.temp_file "hssta" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      H.Model_io.save m ~path;
      let m' = H.Model_io.load ~path in
      Alcotest.(check int)
        "edge count after file roundtrip"
        (Tgraph.n_edges m.H.Timing_model.graph)
        (Tgraph.n_edges m'.H.Timing_model.graph))

let test_model_io_rejects_garbage () =
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool)
        name true
        (try
           ignore (H.Model_io.of_string text);
           false
         with Ssta_robust.Robust.Error ctx ->
           ctx.Ssta_robust.Robust.subsystem = "model_io"
           && ctx.Ssta_robust.Robust.indices <> []))
    [
      ("bad magic", "not-a-model\n");
      ("truncated", "hssta-timing-model v1\nname x\n");
      ( "bad token",
        "hssta-timing-model v1\nname x\ndelta oops\n" );
    ]

let test_model_io_loaded_model_analyzes () =
  (* The loaded model must drop into the hierarchical flow unchanged. *)
  let b = Lazy.force build in
  let m = Lazy.force model in
  let m' = H.Model_io.of_string (H.Model_io.to_string m) in
  (* c432 has 36 inputs / 7 outputs - not square - so build a 1-instance
     design manually. *)
  let die = m.H.Timing_model.die in
  let fp inst_model =
    H.Floorplan.create ~die
      ~instances:
        [| { H.Floorplan.label = "u0"; build = Some b; model = inst_model;
             origin = (0.0, 0.0) } |]
      ~connections:[||]
  in
  let run inst_model =
    let fp = fp inst_model in
    let dg = H.Design_grid.build fp in
    (H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced).H.Hier_analysis.delay
  in
  let d = run m and d' = run m' in
  close ~tol:0.0 "same design mean" d.Form.mean d'.Form.mean;
  close ~tol:0.0 "same design sigma" (Form.std d) (Form.std d')

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let test_diagnostics_sums () =
  let b = Lazy.force build in
  let arr = H.Propagate.forward_all b.Build.graph ~forms:b.Build.forms in
  match
    H.Propagate.max_over arr b.Build.graph.Ssta_timing.Tgraph.outputs
  with
  | None -> Alcotest.fail "unreachable"
  | Some f ->
      let budget = H.Diagnostics.budget ~n_params:3 f in
      let parts =
        Array.fold_left ( +. ) 0.0 budget.H.Diagnostics.global_per_param
        +. Array.fold_left ( +. ) 0.0 budget.H.Diagnostics.local_per_param
        +. budget.H.Diagnostics.random
      in
      close ~tol:1e-9 "parts sum to total" budget.H.Diagnostics.total_variance
        parts;
      let fg = H.Diagnostics.fraction_global budget in
      let fl = H.Diagnostics.fraction_local budget in
      let fr = H.Diagnostics.fraction_random budget in
      close ~tol:1e-9 "fractions sum to 1" 1.0 (fg +. fl +. fr);
      (* With the paper's split, global and local both matter. *)
      Alcotest.(check bool) "global material" true (fg > 0.2);
      Alcotest.(check bool) "local material" true (fl > 0.1)

let test_diagnostics_pure_random () =
  let f = Form.make ~mean:1.0 ~globals:[| 0.0 |] ~pcs:[| 0.0; 0.0 |] ~rand:2.0 in
  let b = H.Diagnostics.budget ~n_params:1 f in
  close "all random" 1.0 (H.Diagnostics.fraction_random b);
  close "variance" 4.0 b.H.Diagnostics.total_variance

(* ------------------------------------------------------------------ *)
(* Min analysis                                                        *)
(* ------------------------------------------------------------------ *)

let dims = { Form.n_globals = 1; n_pcs = 1 }
let det v = Form.constant dims v

let test_min_deterministic () =
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 2); (1, 2); (2, 3) |]
      ~inputs:[| 0; 1 |] ~outputs:[| 3 |]
  in
  let forms = [| det 5.0; det 2.0; det 1.0 |] in
  let arr = H.Min_analysis.forward_min_all g ~forms in
  (match arr.(3) with
  | Some f -> close "min arrival" 3.0 f.Form.mean
  | None -> Alcotest.fail "unreachable");
  (* Late analysis on the same graph gives 6. *)
  let late = H.Propagate.forward_all g ~forms in
  match late.(3) with
  | Some f -> close "max arrival" 6.0 f.Form.mean
  | None -> Alcotest.fail "unreachable"

let test_min_leq_max () =
  let b = Lazy.force build in
  let g = b.Build.graph in
  let early = H.Min_analysis.forward_min_all g ~forms:b.Build.forms in
  let late = H.Propagate.forward_all g ~forms:b.Build.forms in
  Array.iteri
    (fun v e ->
      match (e, late.(v)) with
      | Some fe, Some fl ->
          if fe.Form.mean > fl.Form.mean +. 1e-6 then
            Alcotest.fail
              (Printf.sprintf "vertex %d: early %g > late %g" v fe.Form.mean
                 fl.Form.mean)
      | None, Some _ | Some _, None ->
          Alcotest.fail "early/late reachability disagrees"
      | None, None -> ())
    early

let test_min_vs_mc () =
  (* Early arrival at an output vs sampled minimum. *)
  let nl = Ssta_circuit.Adder.ripple ~bits:4 () in
  let b = Build.characterize nl in
  let g = b.Build.graph in
  let early = H.Min_analysis.forward_min_all g ~forms:b.Build.forms in
  let out = g.Tgraph.outputs.(0) in
  let rng = Ssta_gauss.Rng.create ~seed:9 in
  let ctx = Ssta_mc.Sampler.ctx_of_build b in
  let weights = Array.make (Tgraph.n_edges g) 0.0 in
  let acc = Ssta_gauss.Stats.Welford.create () in
  for _ = 1 to 3000 do
    let s = Ssta_mc.Sampler.draw b.Build.basis rng in
    Ssta_mc.Sampler.fill_weights ctx s rng weights;
    (* Deterministic shortest path from all inputs. *)
    let n = Tgraph.n_vertices g in
    let dist = Array.make n infinity in
    Array.iter (fun v -> dist.(v) <- 0.0) g.Tgraph.inputs;
    Array.iteri
      (fun e s_ ->
        if dist.(s_) < infinity then begin
          let d = g.Tgraph.dst.(e) in
          let t = dist.(s_) +. weights.(e) in
          if t < dist.(d) then dist.(d) <- t
        end)
      g.Tgraph.src;
    Ssta_gauss.Stats.Welford.add acc dist.(out)
  done;
  match early.(out) with
  | None -> Alcotest.fail "unreachable"
  | Some f ->
      let mc_mean = Ssta_gauss.Stats.Welford.mean acc in
      close ~tol:(0.05 *. mc_mean) "early mean vs mc" mc_mean f.Form.mean

let test_hold_slack () =
  let f = det 10.0 in
  let slack = H.Min_analysis.hold_slack ~early:f ~hold_time:4.0 in
  close "slack mean" 6.0 slack.Form.mean

(* ------------------------------------------------------------------ *)
(* Corners                                                             *)
(* ------------------------------------------------------------------ *)

let test_corner_ordering () =
  let b = Lazy.force build in
  let fast = H.Corners.corner_delay b (H.Corners.Fast 3.0) in
  let nominal = H.Corners.corner_delay b H.Corners.Nominal in
  let gslow = H.Corners.corner_delay b (H.Corners.Global_slow 3.0) in
  let slow = H.Corners.corner_delay b (H.Corners.Slow 3.0) in
  Alcotest.(check bool) "fast < nominal" true (fast < nominal);
  Alcotest.(check bool) "nominal < global slow" true (nominal < gslow);
  Alcotest.(check bool) "global slow < full slow" true (gslow < slow)

let test_corner_pessimism () =
  let b = Lazy.force build in
  let p = H.Corners.pessimism b in
  (* The paper's premise: the all-variation corner is pessimistic compared
     to the statistical 3-sigma quantile. *)
  Alcotest.(check bool)
    (Printf.sprintf "corner %.0f above ssta q99.87 %.0f" p.H.Corners.slow3
       p.H.Corners.ssta_q9987)
    true
    (p.H.Corners.slow3 > p.H.Corners.ssta_q9987);
  Alcotest.(check bool)
    (Printf.sprintf "margin ratio %.2f > 1.3" p.H.Corners.margin_ratio)
    true
    (p.H.Corners.margin_ratio > 1.3)

(* ------------------------------------------------------------------ *)
(* Path report                                                         *)
(* ------------------------------------------------------------------ *)

let test_path_trace_chain () =
  let g =
    Tgraph.make ~n_vertices:3
      ~edges:[| (0, 1); (1, 2) |]
      ~inputs:[| 0 |] ~outputs:[| 2 |]
  in
  let forms = [| det 1.0; det 2.0 |] in
  let arrival = H.Propagate.forward_all g ~forms in
  match H.Path_report.trace g ~forms ~arrival ~endpoint:2 with
  | None -> Alcotest.fail "no path"
  | Some p ->
      Alcotest.(check (list int)) "vertices" [ 0; 1; 2 ] p.H.Path_report.vertices;
      Alcotest.(check (list int)) "edges" [ 0; 1 ] p.H.Path_report.edges;
      close "delay" 3.0 p.H.Path_report.delay.Form.mean;
      close ~tol:1e-6 "chain criticality" 1.0 p.H.Path_report.criticality

let noisy mean =
  Form.make ~mean ~globals:[| 0.05 *. mean |] ~pcs:[| 0.05 *. mean |]
    ~rand:(0.02 *. mean)

let test_path_trace_picks_dominant () =
  (* Diamond with a dominant branch. *)
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 1); (0, 2); (1, 3); (2, 3) |]
      ~inputs:[| 0 |] ~outputs:[| 3 |]
  in
  let forms = [| noisy 10.0; noisy 1.0; noisy 10.0; noisy 1.0 |] in
  let arrival = H.Propagate.forward_all g ~forms in
  match H.Path_report.trace g ~forms ~arrival ~endpoint:3 with
  | None -> Alcotest.fail "no path"
  | Some p ->
      Alcotest.(check (list int)) "dominant path" [ 0; 1; 3 ]
        p.H.Path_report.vertices

let test_top_paths () =
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 1); (0, 2); (1, 3); (2, 3) |]
      ~inputs:[| 0 |] ~outputs:[| 3 |]
  in
  let forms = [| noisy 10.0; noisy 9.0; noisy 10.0; noisy 9.0 |] in
  let arrival = H.Propagate.forward_all g ~forms in
  let paths = H.Path_report.top_paths g ~forms ~arrival ~endpoint:3 ~k:3 in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  (match paths with
  | p1 :: p2 :: _ ->
      Alcotest.(check bool)
        "ordered by criticality" true
        (p1.H.Path_report.criticality >= p2.H.Path_report.criticality)
  | _ -> Alcotest.fail "missing paths");
  (* On a c432-scale circuit the top path of the worst endpoint should have
     substantial criticality. *)
  let b = Lazy.force build in
  let arr = H.Propagate.forward_all b.Build.graph ~forms:b.Build.forms in
  let worst =
    Array.fold_left
      (fun acc v ->
        match (acc, arr.(v)) with
        | None, Some f -> Some (v, f.Form.mean)
        | Some (_, m), Some f when f.Form.mean > m -> Some (v, f.Form.mean)
        | acc, _ -> acc)
      None b.Build.graph.Tgraph.outputs
  in
  match worst with
  | None -> Alcotest.fail "no endpoint"
  | Some (endpoint, _) -> (
      match
        H.Path_report.top_paths b.Build.graph ~forms:b.Build.forms
          ~arrival:arr ~endpoint ~k:5
      with
      | [] -> Alcotest.fail "no paths on c432"
      | p :: _ ->
          Alcotest.(check bool)
            "top path criticality > 0.15" true
            (p.H.Path_report.criticality > 0.15))

(* ------------------------------------------------------------------ *)
(* Output load model (paper future work)                               *)
(* ------------------------------------------------------------------ *)

let test_output_load_increments_positive () =
  let m = Lazy.force model in
  Alcotest.(check int)
    "one increment per output"
    (H.Timing_model.n_outputs m)
    (Array.length m.H.Timing_model.output_load);
  Array.iter
    (fun f ->
      Alcotest.(check bool) "positive increment" true (f.Form.mean > 0.0))
    m.H.Timing_model.output_load

let test_output_load_raises_delay () =
  (* The same module driving two sinks per output must be slower than
     driving one. *)
  let nl = Ssta_circuit.Multiplier.make ~bits:4 () in
  let b = Build.characterize nl in
  let m = H.Extract.extract ~delta:0.05 b in
  let mdie = m.H.Timing_model.die in
  let w = Ssta_variation.Tile.width mdie
  and h = Ssta_variation.Tile.height mdie in
  let die = Ssta_variation.Tile.make ~x0:0.0 ~y0:0.0 ~x1:(3.0 *. w) ~y1:h in
  let inst x label =
    { H.Floorplan.label; build = Some b; model = m; origin = (x, 0.0) }
  in
  let n_out = H.Timing_model.n_outputs m in
  let conn src dst =
    Array.init n_out (fun p ->
        ({ H.Floorplan.inst = src; port = p }, { H.Floorplan.inst = dst; port = p }))
  in
  let single =
    H.Floorplan.create ~die
      ~instances:[| inst 0.0 "a"; inst w "b"; inst (2.0 *. w) "c" |]
      ~connections:(conn 0 1)
  in
  let double =
    H.Floorplan.create ~die
      ~instances:[| inst 0.0 "a"; inst w "b"; inst (2.0 *. w) "c" |]
      ~connections:(Array.append (conn 0 1) (conn 0 2))
  in
  let delay fp =
    let dg = H.Design_grid.build fp in
    (H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced)
      .H.Hier_analysis.delay
  in
  let d1 = delay single and d2 = delay double in
  Alcotest.(check bool)
    (Printf.sprintf "double fanout slower (%.1f > %.1f)" d2.Form.mean
       d1.Form.mean)
    true
    (d2.Form.mean > d1.Form.mean)

let test_output_load_roundtrips () =
  let m = Lazy.force model in
  let m' = H.Model_io.of_string (H.Model_io.to_string m) in
  Array.iteri
    (fun p f ->
      if not (Form.equal ~tol:0.0 f m'.H.Timing_model.output_load.(p)) then
        Alcotest.fail (Printf.sprintf "load increment %d drifted" p))
    m.H.Timing_model.output_load

(* ------------------------------------------------------------------ *)
(* Multi-level hierarchy                                               *)
(* ------------------------------------------------------------------ *)

let test_extract_design_compresses () =
  let b = Build.characterize (Ssta_circuit.Multiplier.make ~bits:4 ()) in
  let m1 = H.Extract.extract ~delta:0.05 b in
  let fp1 = H.Floorplan.mult_grid ~label:"quad" ~build:b ~model:m1 () in
  let dg1 = H.Design_grid.build fp1 in
  let res1 = H.Hier_analysis.analyze fp1 dg1 ~mode:H.Replace.Replaced in
  let super = H.Extract.extract_design ~name:"quad_model" fp1 dg1 res1 in
  let s = super.H.Timing_model.stats in
  Alcotest.(check bool)
    "design model smaller" true
    (s.H.Timing_model.model_edges < s.H.Timing_model.original_edges);
  Alcotest.(check int)
    "ports preserved"
    (Array.length fp1.H.Floorplan.ext_inputs
    + Array.length fp1.H.Floorplan.ext_outputs)
    (H.Timing_model.n_inputs super + H.Timing_model.n_outputs super);
  (* The design model's IO delays match the analyzed design's arrivals
     (sanity: its own worst IO delay equals the design delay's mean within
     the max-approximation drift). *)
  let io = H.Timing_model.io_delays super in
  let worst = ref 0.0 in
  Array.iter
    (Array.iter (function
      | Some f -> worst := Float.max !worst f.Form.mean
      | None -> ()))
    io;
  let d = res1.H.Hier_analysis.delay in
  Alcotest.(check bool)
    (Printf.sprintf "worst IO %.1f ~ design delay %.1f" !worst d.Form.mean)
    true
    (abs_float (!worst -. d.Form.mean) /. d.Form.mean < 0.03)

let test_second_level_analysis () =
  (* Level 2: four copies of the level-1 design model, gray-box (no
     netlist), in a 2x2 super-floorplan. *)
  let b = Build.characterize (Ssta_circuit.Multiplier.make ~bits:4 ()) in
  let m1 = H.Extract.extract ~delta:0.05 b in
  let fp1 = H.Floorplan.mult_grid ~label:"quad" ~build:b ~model:m1 () in
  let dg1 = H.Design_grid.build fp1 in
  let res1 = H.Hier_analysis.analyze fp1 dg1 ~mode:H.Replace.Replaced in
  let super = H.Extract.extract_design ~name:"quad_model" fp1 dg1 res1 in
  (* Serialization also covers heterogeneous-grid models. *)
  let super = H.Model_io.of_string (H.Model_io.to_string super) in
  let fp2 = H.Floorplan.mult_grid ~label:"super" ~model:super () in
  let dg2 = H.Design_grid.build fp2 in
  let res2 = H.Hier_analysis.analyze fp2 dg2 ~mode:H.Replace.Replaced in
  let d2 = res2.H.Hier_analysis.delay in
  let d1 = res1.H.Hier_analysis.delay in
  Alcotest.(check bool)
    (Printf.sprintf "two levels deeper (%.1f vs %.1f)" d2.Form.mean
       d1.Form.mean)
    true
    (d2.Form.mean > 1.5 *. d1.Form.mean && d2.Form.mean < 2.5 *. d1.Form.mean);
  Alcotest.(check bool) "has spread" true (Form.std d2 > Form.std d1 *. 0.8);
  (* Gray-box instances cannot be flattened - by design. *)
  Alcotest.(check bool)
    "flatten refuses gray boxes" true
    (try
       ignore (H.Hier_analysis.flatten fp2 dg2);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_outputs () =
  let nl = Ssta_circuit.Adder.ripple ~bits:2 () in
  let dot = Ssta_timing.Dot.netlist nl in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let g = Ssta_timing.Tgraph.of_netlist nl in
  let w = Array.make (Tgraph.n_edges g) 1.5 in
  let dot2 = Ssta_timing.Dot.tgraph ~weights:w ~highlight:[ 0 ] g in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "has weight labels" true
    (contains dot2 "label=\"1.5\"");
  Alcotest.(check bool) "has highlight" true (contains dot2 "lightsalmon")

let suites =
  [
    ( "ext.model_io",
      [
        Alcotest.test_case "roundtrip" `Quick test_model_io_roundtrip;
        Alcotest.test_case "io delays preserved" `Quick
          test_model_io_preserves_io_delays;
        Alcotest.test_case "file save/load" `Quick test_model_io_file;
        Alcotest.test_case "rejects garbage" `Quick
          test_model_io_rejects_garbage;
        Alcotest.test_case "loaded model analyzes" `Quick
          test_model_io_loaded_model_analyzes;
      ] );
    ( "ext.diagnostics",
      [
        Alcotest.test_case "budget sums" `Quick test_diagnostics_sums;
        Alcotest.test_case "pure random" `Quick test_diagnostics_pure_random;
      ] );
    ( "ext.min_analysis",
      [
        Alcotest.test_case "deterministic min" `Quick test_min_deterministic;
        Alcotest.test_case "early <= late" `Quick test_min_leq_max;
        Alcotest.test_case "early vs MC" `Slow test_min_vs_mc;
        Alcotest.test_case "hold slack" `Quick test_hold_slack;
      ] );
    ( "ext.corners",
      [
        Alcotest.test_case "corner ordering" `Quick test_corner_ordering;
        Alcotest.test_case "corner pessimism" `Quick test_corner_pessimism;
      ] );
    ( "ext.path_report",
      [
        Alcotest.test_case "trace chain" `Quick test_path_trace_chain;
        Alcotest.test_case "picks dominant" `Quick
          test_path_trace_picks_dominant;
        Alcotest.test_case "top paths" `Quick test_top_paths;
      ] );
    ( "ext.multilevel",
      [
        Alcotest.test_case "extract_design compresses" `Quick
          test_extract_design_compresses;
        Alcotest.test_case "second-level analysis" `Quick
          test_second_level_analysis;
      ] );
    ( "ext.output_load",
      [
        Alcotest.test_case "increments positive" `Quick
          test_output_load_increments_positive;
        Alcotest.test_case "fanout raises delay" `Quick
          test_output_load_raises_delay;
        Alcotest.test_case "roundtrips" `Quick test_output_load_roundtrips;
      ] );
    ("ext.dot", [ Alcotest.test_case "dot output" `Quick test_dot_outputs ]);
  ]
