(* The graceful-degradation layer: structured errors, policy dispatch,
   repair kernels, the degenerate Clark branches against Monte Carlo
   references, Model_io round-trip/mutation fuzz, and the deterministic
   fault-injection corpus. *)

module Robust = Ssta_robust.Robust
module Inject = Ssta_robust_inject.Inject
module Normal = Ssta_gauss.Normal
module Stats = Ssta_gauss.Stats
module Rng = Ssta_gauss.Rng
module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Mat = Ssta_linalg.Mat
module Cholesky = Ssta_linalg.Cholesky
module Sym_eig = Ssta_linalg.Sym_eig
module Pca = Ssta_linalg.Pca
module Build = Ssta_timing.Build
module H = Hier_ssta

let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

let cval name = Robust.value (Robust.counter name)

let build = lazy (Build.characterize (Ssta_circuit.Iscas.build "c432"))
let model = lazy (H.Extract.extract (Lazy.force build))
let inject_ctx = lazy (Inject.make_ctx "c432")

(* ------------------------------------------------------------------ *)
(* Policy and counters                                                 *)
(* ------------------------------------------------------------------ *)

let test_policy_of_string () =
  List.iter
    (fun (s, p) ->
      match Robust.policy_of_string s with
      | Ok p' -> Alcotest.(check string) s (Robust.policy_name p) (Robust.policy_name p')
      | Error m -> Alcotest.fail m)
    [ ("strict", Robust.Strict); ("repair", Robust.Repair); ("warn", Robust.Warn) ];
  match Robust.policy_of_string "lenient" with
  | Ok _ -> Alcotest.fail "bogus policy accepted"
  | Error _ -> ()

let test_policy_dispatch () =
  let c = Robust.counter "robust.test_dispatch" in
  let ctx =
    Robust.context ~subsystem:"test" ~operation:"dispatch" ~indices:[ 7 ]
      ~values:[ 3.5 ] "synthetic"
  in
  with_policy Robust.Strict (fun () ->
      Robust.reset ();
      (match Robust.repair c ctx with
      | () -> Alcotest.fail "strict policy did not raise"
      | exception Robust.Error c' ->
          Alcotest.(check string) "subsystem" "test" c'.Robust.subsystem;
          Alcotest.(check (list int)) "indices" [ 7 ] c'.Robust.indices);
      Alcotest.(check int) "no count on strict raise" 0 (Robust.value c));
  with_policy Robust.Repair (fun () ->
      Robust.reset ();
      Robust.repair c ctx;
      Robust.repair c ctx;
      Alcotest.(check int) "repair counts" 2 (Robust.value c);
      Alcotest.(check bool) "listed" true
        (List.mem_assoc "robust.test_dispatch" (Robust.counters ()));
      Robust.reset ();
      Alcotest.(check int) "reset" 0 (Robust.value c))

let test_counter_idempotent () =
  let a = Robust.counter "robust.test_same" in
  let b = Robust.counter "robust.test_same" in
  with_policy Robust.Repair (fun () ->
      Robust.reset ();
      Robust.repair a
        (Robust.context ~subsystem:"test" ~operation:"same" "synthetic");
      Alcotest.(check int) "same cell" 1 (Robust.value b))

let test_error_to_string () =
  let c =
    Robust.context ~subsystem:"linalg.test" ~operation:"op"
      ~indices:[ 1; 2 ] ~values:[ Float.nan ] "what happened"
  in
  let s = Robust.to_string c in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" s needle)
        true
        (let nl = String.length needle and sl = String.length s in
         let rec at i =
           i + nl <= sl && (String.sub s i nl = needle || at (i + 1))
         in
         at 0))
    [ "linalg.test"; "op"; "what happened"; "1 2"; "nan" ]

(* ------------------------------------------------------------------ *)
(* Degenerate Clark max vs Monte Carlo references                      *)
(* ------------------------------------------------------------------ *)

(* Sample max(A,B) for jointly Gaussian A, B and compare against the
   analytic moments.  10^5 samples put the standard error of the mean
   near 0.005 for unit variances; tolerances are set at ~4 sigma. *)
let mc_max ~mean_a ~var_a ~mean_b ~var_b ~cov seed =
  let n = 100_000 in
  let rng = Rng.create ~seed in
  let sa = sqrt var_a and sb = sqrt var_b in
  let rho = if sa = 0.0 || sb = 0.0 then 0.0 else cov /. (sa *. sb) in
  let rho = Float.min 1.0 (Float.max (-1.0) rho) in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    let y = Rng.gaussian rng in
    let a = mean_a +. (sa *. x) in
    let b =
      mean_b +. (sb *. ((rho *. x) +. (sqrt (1.0 -. (rho *. rho)) *. y)))
    in
    Stats.Welford.add acc (Float.max a b)
  done;
  (Stats.Welford.mean acc, Stats.Welford.variance acc)

let check_against_mc name ~mean_a ~var_a ~mean_b ~var_b ~cov =
  let r = Normal.clark_max ~mean_a ~var_a ~mean_b ~var_b ~cov in
  let mc_mean, mc_var = mc_max ~mean_a ~var_a ~mean_b ~var_b ~cov 1234 in
  Alcotest.(check bool)
    (Printf.sprintf "%s mean %.4f vs MC %.4f" name r.Normal.mean mc_mean)
    true
    (abs_float (r.Normal.mean -. mc_mean) < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "%s variance %.4f vs MC %.4f" name r.Normal.variance mc_var)
    true
    (abs_float (r.Normal.variance -. mc_var) < 0.05)

let test_clark_degenerate_vs_mc () =
  (* sigma_a = 0: A is the constant mean_a. *)
  check_against_mc "sigma_a=0" ~mean_a:0.4 ~var_a:0.0 ~mean_b:0.0 ~var_b:1.0
    ~cov:0.0;
  check_against_mc "sigma_b=0" ~mean_a:0.0 ~var_a:1.0 ~mean_b:0.4 ~var_b:0.0
    ~cov:0.0;
  (* rho = -1: B = 2*mean_b - A shifted; genuinely two-sided max. *)
  check_against_mc "rho=-1" ~mean_a:0.1 ~var_a:1.0 ~mean_b:0.0 ~var_b:1.0
    ~cov:(-1.0);
  (* Equal moments, partial correlation: the generic branch. *)
  check_against_mc "equal moments" ~mean_a:0.0 ~var_a:1.0 ~mean_b:0.0
    ~var_b:1.0 ~cov:0.3

let test_clark_exact_closed_forms () =
  (* rho = +1 with equal sigmas: max(m_a + x, m_b + x) is exactly
     max(m_a, m_b) + x - the tie branch must be exact, not approximate. *)
  let r = Normal.clark_max ~mean_a:0.7 ~var_a:1.0 ~mean_b:0.2 ~var_b:1.0 ~cov:1.0 in
  Alcotest.(check (float 0.0)) "rho=1 mean" 0.7 r.Normal.mean;
  Alcotest.(check (float 0.0)) "rho=1 variance" 1.0 r.Normal.variance;
  Alcotest.(check (float 0.0)) "rho=1 tightness" 1.0 r.Normal.tightness;
  (* Both constants: max of two numbers. *)
  let r = Normal.clark_max ~mean_a:1.0 ~var_a:0.0 ~mean_b:3.0 ~var_b:0.0 ~cov:0.0 in
  Alcotest.(check (float 0.0)) "const mean" 3.0 r.Normal.mean;
  Alcotest.(check (float 0.0)) "const variance" 0.0 r.Normal.variance;
  (* A variable maxed with itself (cov = var): the operand, exactly. *)
  let r = Normal.clark_max ~mean_a:0.5 ~var_a:2.0 ~mean_b:0.5 ~var_b:2.0 ~cov:2.0 in
  Alcotest.(check (float 0.0)) "self-max mean" 0.5 r.Normal.mean;
  Alcotest.(check (float 0.0)) "self-max variance" 2.0 r.Normal.variance

let test_clark_generic_approaches_degenerate () =
  (* The generic path at var_a = eps must converge to the closed form at
     var_a = 0 as eps -> 0+ (no branch discontinuity). *)
  let at va =
    (Normal.clark_max ~mean_a:0.3 ~var_a:va ~mean_b:0.0 ~var_b:1.0 ~cov:0.0)
      .Normal.mean
  in
  let limit = at 0.0 in
  List.iter
    (fun eps ->
      Alcotest.(check bool)
        (Printf.sprintf "var_a=%g close to limit" eps)
        true
        (abs_float (at eps -. limit) < 1e-3))
    [ 1e-6; 1e-9; 1e-12 ]

let bits = Int64.bits_of_float

let test_clark_into_bit_equality () =
  (* clark_max_into must match clark_max bit for bit, on valid degenerate
     operands and on faulty operands routed through the repair branch. *)
  with_policy Robust.Repair (fun () ->
      List.iter
        (fun (mean_a, var_a, mean_b, var_b, cov) ->
          let r = Normal.clark_max ~mean_a ~var_a ~mean_b ~var_b ~cov in
          let s = [| mean_a; var_a; mean_b; var_b; cov |] in
          Normal.clark_max_into s;
          Alcotest.(check int64) "tightness bits" (bits r.Normal.tightness)
            (bits s.(0));
          Alcotest.(check int64) "mean bits" (bits r.Normal.mean) (bits s.(1));
          Alcotest.(check int64) "variance bits" (bits r.Normal.variance)
            (bits s.(2)))
        [
          (0.4, 0.0, 0.0, 1.0, 0.0);
          (0.7, 1.0, 0.2, 1.0, 1.0);
          (0.1, 1.0, 0.0, 1.0, -1.0);
          (0.5, 2.0, 0.5, 2.0, 2.0);
          (1.0, 0.0, 3.0, 0.0, 0.0);
          (Float.nan, 1.0, 0.0, 1.0, 0.0);
          (0.0, Float.infinity, 0.0, 1.0, 0.0);
          (0.0, -1.0, 0.0, 1.0, 0.0);
        ])

let test_clark_faulty_operands () =
  let run () =
    Normal.clark_max ~mean_a:Float.nan ~var_a:1.0 ~mean_b:0.0 ~var_b:1.0
      ~cov:0.0
  in
  with_policy Robust.Strict (fun () ->
      Robust.reset ();
      match run () with
      | _ -> Alcotest.fail "strict accepted NaN operand"
      | exception Robust.Error c ->
          Alcotest.(check string) "subsystem" "gauss.normal" c.Robust.subsystem);
  with_policy Robust.Repair (fun () ->
      Robust.reset ();
      let r = run () in
      Alcotest.(check bool) "finite mean" true (Robust.is_finite r.Normal.mean);
      Alcotest.(check bool) "degenerate counted" true
        (cval "robust.clark_degenerate" > 0))

let test_form_buf_degenerate_bit_equality () =
  (* The buffered kernel and the boxed path must agree bitwise on
     zero-variance operands (the tie/degenerate branches). *)
  let dims = { Form.n_globals = 2; n_pcs = 3 } in
  let zv =
    Form.make ~mean:5.0 ~globals:[| 0.0; 0.0 |] ~pcs:[| 0.0; 0.0; 0.0 |]
      ~rand:0.0
  in
  let g = Form.make ~mean:4.0 ~globals:[| 0.3; -0.1 |] ~pcs:[| 0.2; 0.0; 0.1 |] ~rand:0.4 in
  List.iter
    (fun (a, b) ->
      let buf = Form_buf.of_forms dims [| a; b; a |] in
      Form_buf.max2_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:2;
      let got = Form_buf.get buf 2 in
      let want = Form.max2 a b in
      Alcotest.(check int64) "mean bits" (bits want.Form.mean) (bits got.Form.mean);
      Alcotest.(check int64) "rand bits" (bits want.Form.rand) (bits got.Form.rand);
      Array.iteri
        (fun i w ->
          Alcotest.(check int64) "global bits" (bits w) (bits got.Form.globals.(i)))
        want.Form.globals;
      Array.iteri
        (fun i w ->
          Alcotest.(check int64) "pc bits" (bits w) (bits got.Form.pcs.(i)))
        want.Form.pcs)
    [ (zv, g); (g, zv); (zv, zv); (g, g) ]

(* ------------------------------------------------------------------ *)
(* Stats boundaries                                                    *)
(* ------------------------------------------------------------------ *)

let test_histogram_dropped () =
  let xs = [| 0.5; 1.5; -0.5; 0.25 |] in
  let counts, dropped = Stats.histogram_dropped ~lo:0.0 ~hi:1.0 ~bins:2 xs in
  Alcotest.(check int) "dropped" 2 dropped;
  Alcotest.(check int) "kept" 2 (Array.fold_left ( + ) 0 counts);
  let counts' = Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:2 xs in
  Alcotest.(check (array int)) "histogram = fst" counts counts'

let test_stats_nan_rejected () =
  let xs = [| 1.0; Float.nan; 3.0 |] in
  List.iter
    (fun (name, f) ->
      match f xs with
      | _ -> Alcotest.fail (name ^ " accepted NaN")
      | exception Robust.Error c ->
          Alcotest.(check string)
            (name ^ " subsystem") "gauss.stats" c.Robust.subsystem;
          Alcotest.(check (list int)) (name ^ " index") [ 1 ] c.Robust.indices)
    [
      ("mean", fun xs -> ignore (Stats.mean xs));
      ("quantile", fun xs -> ignore (Stats.quantile xs 0.5));
      ("empirical_cdf", fun xs -> ignore (Stats.empirical_cdf xs));
      ("histogram", fun xs -> ignore (Stats.histogram ~bins:4 xs));
    ]

(* ------------------------------------------------------------------ *)
(* Linalg boundaries                                                   *)
(* ------------------------------------------------------------------ *)

let test_cholesky_jitter_policy () =
  (* Slightly indefinite: the jitter ladder repairs it; strict refuses. *)
  let c = Mat.init 2 2 (fun i j -> if i = j && i = 1 then 1.0 -. 1e-12 else 1.0) in
  with_policy Robust.Strict (fun () ->
      match Cholesky.factor c with
      | _ -> Alcotest.fail "strict factored an indefinite matrix"
      | exception Robust.Error c' ->
          Alcotest.(check string) "subsystem" "linalg.cholesky"
            c'.Robust.subsystem);
  with_policy Robust.Repair (fun () ->
      Robust.reset ();
      let l = Cholesky.factor c in
      Alcotest.(check bool) "finite factor" true
        (Robust.is_finite (Mat.get l 1 1));
      Alcotest.(check bool) "retry counted" true
        (cval "robust.chol_jitter_retries" > 0))

let test_sym_eig_nonfinite_rejected () =
  let c = Mat.init 2 2 (fun i j -> if i = 0 && j = 1 then Float.nan else 1.0) in
  with_policy Robust.Repair (fun () ->
      (* Non-finite input to the eigensolver is unrepairable at this level:
         it raises under every policy. *)
      match Sym_eig.decompose c with
      | _ -> Alcotest.fail "decompose accepted NaN"
      | exception Robust.Error c' ->
          Alcotest.(check string) "subsystem" "linalg.sym_eig"
            c'.Robust.subsystem)

let test_pca_psd_policy () =
  let c =
    Mat.init 2 2 (fun i j -> if i = j then 1.0 else 10.0)
  in
  with_policy Robust.Strict (fun () ->
      match Pca.of_covariance c with
      | _ -> Alcotest.fail "strict accepted an indefinite covariance"
      | exception Robust.Error c' ->
          Alcotest.(check string) "subsystem" "linalg.pca" c'.Robust.subsystem);
  with_policy Robust.Repair (fun () ->
      Robust.reset ();
      let p = Pca.of_covariance c in
      Alcotest.(check bool) "clip counted" true (cval "robust.psd_clips" > 0);
      Array.iter
        (fun v ->
          Alcotest.(check bool) "eigenvalues clipped PSD" true (v >= 0.0))
        p.Pca.values)

(* ------------------------------------------------------------------ *)
(* Model_io round-trip and mutation fuzz                               *)
(* ------------------------------------------------------------------ *)

let random_form rng ~like:(f : Form.t) =
  let wild () =
    let m = (2.0 *. Rng.uniform rng) -. 1.0 in
    ldexp m (Rng.int rng 600 - 300)
  in
  Form.make ~mean:(wild ())
    ~globals:(Array.map (fun _ -> wild ()) f.Form.globals)
    ~pcs:(Array.map (fun _ -> wild ()) f.Form.pcs)
    ~rand:(abs_float (wild ()))

let test_model_io_roundtrip_fuzz () =
  let m = Lazy.force model in
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10 do
    let forms = Array.map (fun f -> random_form rng ~like:f) m.H.Timing_model.forms in
    let m' = { m with H.Timing_model.forms = forms } in
    let text = H.Model_io.to_string m' in
    let m'' = H.Model_io.of_string text in
    (* Serialization is canonical, so bit-exactness of the round-trip is
       string equality of a second serialization. *)
    Alcotest.(check string) "write-read-write fixpoint" text
      (H.Model_io.to_string m'')
  done

let test_model_io_truncation_fuzz () =
  let text = H.Model_io.to_string (Lazy.force model) in
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  let prefix k =
    String.concat "\n" (List.filteri (fun i _ -> i < k) lines)
  in
  List.iter
    (fun k ->
      match H.Model_io.of_string (prefix k) with
      | _ -> Alcotest.fail (Printf.sprintf "truncation at %d parsed" k)
      | exception Robust.Error c ->
          Alcotest.(check string)
            (Printf.sprintf "structured error at %d lines" k)
            "model_io" c.Robust.subsystem;
          Alcotest.(check bool) "carries a line position" true
            (c.Robust.indices <> [])
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "raw exception escaped at %d lines: %s" k
               (Printexc.to_string e)))
    [ 1; 2; 5; n / 2; n - 2 ]

let test_model_io_mutation_fuzz () =
  let text = H.Model_io.to_string (Lazy.force model) in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let rng = Rng.create ~seed:99 in
  with_policy Robust.Strict (fun () ->
      for _ = 1 to 200 do
        let li = Rng.int rng (Array.length lines) in
        let toks = String.split_on_char ' ' lines.(li) in
        let ti = Rng.int rng (max 1 (List.length toks)) in
        let bad = [| "x"; "nan"; "-3"; ""; "1e999" |] in
        let sub = bad.(Rng.int rng (Array.length bad)) in
        let mutated =
          String.concat " "
            (List.mapi (fun i t -> if i = ti then sub else t) toks)
        in
        let save = lines.(li) in
        lines.(li) <- mutated;
        let text' = String.concat "\n" (Array.to_list lines) in
        lines.(li) <- save;
        match H.Model_io.of_string text' with
        | _ -> () (* some mutations are benign (e.g. the model name) *)
        | exception Robust.Error _ -> ()
        | exception Invalid_argument m when m = "Pca.of_parts: eigenvalues not decreasing" ->
            (* A shuffled spectrum is a hard (unrepairable) defect with its
               own message; it must still not be a bare parse failure. *)
            ()
        | exception e ->
            Alcotest.fail
              (Printf.sprintf
                 "raw exception escaped for line %d token %d -> %S: %s" li ti
                 sub (Printexc.to_string e))
      done)

(* ------------------------------------------------------------------ *)
(* Clean-path bit-identity across policies                             *)
(* ------------------------------------------------------------------ *)

let test_clean_path_policy_invariant () =
  let b = Lazy.force build in
  let delay_under policy =
    with_policy policy (fun () ->
        Robust.reset ();
        let m = H.Extract.extract b in
        let nonzero = List.filter (fun (_, v) -> v > 0) (Robust.counters ()) in
        Alcotest.(check (list (pair string int)))
          (Robust.policy_name policy ^ " counters stay zero")
          [] nonzero;
        let io = H.Timing_model.io_delays m in
        let acc = ref [] in
        Array.iter
          (Array.iter (function
            | Some (f : Form.t) -> acc := bits f.Form.mean :: bits (Form.std f) :: !acc
            | None -> ()))
          io;
        !acc)
  in
  let strict = delay_under Robust.Strict in
  let repair = delay_under Robust.Repair in
  let warn = delay_under Robust.Warn in
  Alcotest.(check (list int64)) "strict = repair bitwise" strict repair;
  Alcotest.(check (list int64)) "strict = warn bitwise" strict warn

(* ------------------------------------------------------------------ *)
(* Fault-injection corpus                                              *)
(* ------------------------------------------------------------------ *)

let check_corpus policy () =
  let ctx = Lazy.force inject_ctx in
  let vs = Inject.run_corpus ctx ~seed:42 ~policy in
  Alcotest.(check int)
    "corpus covers every fault class in both flows"
    (2 * Array.length Inject.faults)
    (List.length vs);
  List.iter
    (fun (v : Inject.verdict) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s under %s: %s" v.Inject.fault
           (Inject.flow_name v.Inject.flow)
           (Robust.policy_name policy) v.Inject.detail)
        true v.Inject.ok)
    vs

let test_corpus_deterministic () =
  let ctx = Lazy.force inject_ctx in
  let run () =
    Inject.jsonl_of_verdicts (Inject.run_corpus ctx ~seed:42 ~policy:Robust.Repair)
  in
  Alcotest.(check string) "bit-stable verdicts" (run ()) (run ())

let suites =
  [
    ( "robust",
      [
        Alcotest.test_case "policy of_string" `Quick test_policy_of_string;
        Alcotest.test_case "policy dispatch" `Quick test_policy_dispatch;
        Alcotest.test_case "counter idempotent" `Quick test_counter_idempotent;
        Alcotest.test_case "error rendering" `Quick test_error_to_string;
      ] );
    ( "robust.clark",
      [
        Alcotest.test_case "degenerate vs MC" `Quick test_clark_degenerate_vs_mc;
        Alcotest.test_case "exact closed forms" `Quick
          test_clark_exact_closed_forms;
        Alcotest.test_case "generic approaches degenerate" `Quick
          test_clark_generic_approaches_degenerate;
        Alcotest.test_case "into bit-equality" `Quick
          test_clark_into_bit_equality;
        Alcotest.test_case "faulty operands" `Quick test_clark_faulty_operands;
        Alcotest.test_case "form_buf degenerate bit-equality" `Quick
          test_form_buf_degenerate_bit_equality;
      ] );
    ( "robust.boundaries",
      [
        Alcotest.test_case "histogram dropped count" `Quick
          test_histogram_dropped;
        Alcotest.test_case "stats reject NaN" `Quick test_stats_nan_rejected;
        Alcotest.test_case "cholesky jitter policy" `Quick
          test_cholesky_jitter_policy;
        Alcotest.test_case "sym_eig rejects non-finite" `Quick
          test_sym_eig_nonfinite_rejected;
        Alcotest.test_case "pca psd policy" `Quick test_pca_psd_policy;
      ] );
    ( "robust.model_io",
      [
        Alcotest.test_case "roundtrip fuzz" `Quick test_model_io_roundtrip_fuzz;
        Alcotest.test_case "truncation fuzz" `Quick
          test_model_io_truncation_fuzz;
        Alcotest.test_case "mutation fuzz" `Quick test_model_io_mutation_fuzz;
      ] );
    ( "robust.inject",
      [
        Alcotest.test_case "clean path policy-invariant" `Quick
          test_clean_path_policy_invariant;
        Alcotest.test_case "corpus strict" `Slow (check_corpus Robust.Strict);
        Alcotest.test_case "corpus repair" `Slow (check_corpus Robust.Repair);
        Alcotest.test_case "corpus deterministic" `Slow
          test_corpus_deterministic;
      ] );
  ]
