(* External-design frontend tests: golden bit-identity of parsed designs
   against generator-built equivalents, printer/parser round-trips, exact
   false-path exclusion in report_checks, and determinism of the frontend
   fuzz corpus against the committed verdict stream. *)

module Design = Ssta_frontend.Design
module Verilog = Ssta_frontend.Verilog
module Liberty = Ssta_frontend.Liberty
module Sdc = Ssta_frontend.Sdc
module Fuzz = Ssta_robust_inject.Fuzz
module Netlist = Ssta_circuit.Netlist
module Iscas = Ssta_circuit.Iscas
module Random_logic = Ssta_circuit.Random_logic
module Cell = Ssta_cell.Cell
module Library = Ssta_cell.Library
module Build = Ssta_timing.Build
module Extract = Hier_ssta.Extract
module Model_io = Hier_ssta.Model_io
module Rng = Ssta_gauss.Rng

let read_file path = In_channel.with_open_text path In_channel.input_all
let example name = read_file ("../examples/frontend/" ^ name)

(* Structural netlist equality, floats compared bitwise: the lowering must
   rebuild the generator netlist exactly, not approximately. *)
let cell_equal (a : Cell.t) (b : Cell.t) =
  a.name = b.name && a.n_inputs = b.n_inputs && a.d0 = b.d0 && a.sens = b.sens
  && a.load_sens = b.load_sens

let gate_equal (a : Netlist.gate) (b : Netlist.gate) =
  cell_equal a.cell b.cell && a.fanins = b.fanins

let netlist_equal (a : Netlist.t) (b : Netlist.t) =
  a.name = b.name && a.n_pi = b.n_pi
  && Array.length a.gates = Array.length b.gates
  && Array.for_all2 gate_equal a.gates b.gates
  && a.outputs = b.outputs

(* The model stats line ends with the extraction wall-clock - the only
   non-deterministic byte in the serialization; zero it before comparing. *)
let zero_wall s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         if String.length line > 6 && String.sub line 0 6 = "stats " then
           match String.rindex_opt line ' ' with
           | Some i -> String.sub line 0 i ^ " 0"
           | None -> line
         else line)
  |> String.concat "\n"

let model_string ~domains nl =
  zero_wall (Model_io.to_string (Extract.extract ~domains (Build.characterize nl)))

let parse_example stem =
  Design.lower
    (Design.parse ~verilog:(example (stem ^ ".v"))
       ~liberty:(example (stem ^ ".lib"))
       ~sdc:(example (stem ^ ".sdc"))
       ())

(* c17 by hand through the Builder, mirroring examples/frontend/c17.v:
   inputs n1 n2 n3 n6 n7 are ids 0-4, gates follow in declaration order. *)
let c17_builder () =
  let b = Netlist.Builder.create ~name:"c17" ~n_pi:5 in
  let nand2 = Library.nand2 in
  let g fanins = Netlist.Builder.add_gate b nand2 (Array.of_list fanins) in
  let n10 = g [ 0; 2 ] in
  let n11 = g [ 2; 3 ] in
  let n16 = g [ 1; n11 ] in
  let n19 = g [ n11; 4 ] in
  let n22 = g [ n10; n16 ] in
  let n23 = g [ n16; n19 ] in
  Netlist.Builder.finish b ~outputs:[| n22; n23 |]

let test_c17_golden () =
  let lowered = parse_example "c17" in
  let built = c17_builder () in
  Alcotest.(check bool)
    "parsed c17 netlist = hand-built netlist" true
    (netlist_equal lowered.Design.netlist built);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "c17 model bit-identical at %d domains" domains)
        (model_string ~domains built)
        (model_string ~domains lowered.Design.netlist))
    [ 1; 4 ]

let test_c432_golden () =
  let lowered = parse_example "c432" in
  let built = Iscas.build "c432" in
  Alcotest.(check bool)
    "parsed c432 netlist = Iscas.build c432" true
    (netlist_equal lowered.Design.netlist built);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "c432 model bit-identical at %d domains" domains)
        (model_string ~domains built)
        (model_string ~domains lowered.Design.netlist))
    [ 1; 4 ]

(* of_netlist -> print -> parse -> lower must reproduce the netlist; the
   examples on disk are one instance of this, the property covers random
   circuits (sizes small enough to keep characterization out of the loop -
   lower alone decides the round-trip). *)
let random_netlist seed =
  let rng = Rng.create ~seed in
  let spec =
    {
      Random_logic.name = "rnd";
      n_pi = 2 + Rng.int rng 5;
      n_po = 1 + Rng.int rng 3;
      n_gates = 5 + Rng.int rng 36;
      seed = 1 + Rng.int rng 1_000_000;
      locality = 0.2 +. (0.6 *. float_of_int (Rng.int rng 100) /. 100.0);
    }
  in
  Random_logic.make spec

let qcheck_roundtrip name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name QCheck.(int_range 0 100_000) prop)

let prop_verilog_roundtrip seed =
  let d = Design.of_netlist (random_netlist seed) in
  Verilog.equal d.Design.modul (Verilog.parse (Verilog.to_string d.Design.modul))

let prop_liberty_roundtrip seed =
  let d = Design.of_netlist (random_netlist seed) in
  Liberty.equal d.Design.lib (Liberty.parse (Liberty.to_string d.Design.lib))

let prop_lower_roundtrip seed =
  let nl = random_netlist seed in
  let d = Design.of_netlist nl in
  let reparsed =
    Design.parse
      ~verilog:(Verilog.to_string d.Design.modul)
      ~liberty:(Liberty.to_string d.Design.lib)
      ()
  in
  netlist_equal nl (Design.lower reparsed).Design.netlist

let random_sdc seed =
  let rng = Rng.create ~seed in
  let name prefix i = Printf.sprintf "%s%d" prefix i in
  let ports prefix =
    List.init (1 + Rng.int rng 3) (fun i -> name prefix (i + Rng.int rng 4))
    |> List.sort_uniq compare
  in
  let fl lo hi = lo +. ((hi -. lo) *. float_of_int (Rng.int rng 10_000) /. 1e4) in
  let clocks =
    List.init (Rng.int rng 3) (fun i ->
        { Sdc.clk_name = name "clk" i; period = fl 1.0 1000.0 })
  in
  let dclock () =
    match clocks with
    | [] -> None
    | { Sdc.clk_name; _ } :: _ -> if Rng.int rng 2 = 0 then Some clk_name else None
  in
  let io prefix =
    List.init (Rng.int rng 3) (fun _ ->
        { Sdc.ports = ports prefix; delay = fl 0.0 50.0; dclock = dclock () })
  in
  {
    Sdc.clocks;
    input_delays = io "in";
    output_delays = io "out";
    false_paths =
      List.init (Rng.int rng 2) (fun _ ->
          { Sdc.from_ports = ports "in"; to_ports = ports "out" });
  }

let prop_sdc_roundtrip seed =
  let sdc = random_sdc seed in
  let printed = Sdc.to_string sdc in
  let reparsed = Sdc.parse printed in
  (* print -> parse -> print is a fixpoint, and the value round-trips. *)
  Sdc.equal sdc reparsed && String.equal printed (Sdc.to_string reparsed)

let test_report_checks_false_path () =
  let lowered = parse_example "c17" in
  let build = Build.characterize lowered.Design.netlist in
  let checks = Design.report_checks ~k:5 lowered ~build in
  Alcotest.(check string) "clock from SDC" "clk" checks.Design.clock;
  Alcotest.(check (float 0.0)) "period from SDC" 250.0 checks.Design.period;
  let ep port =
    List.find (fun e -> e.Design.port = port) checks.Design.endpoints
  in
  let n22 = ep "n22" and n23 = ep "n23" in
  (* set_false_path -from n1 -to n22: no reported path into n22 may start
     at n1 (vertex 0); n23 keeps its n1-rooted paths only if they exist
     structurally (they do not in c17 - but its arrival must use all
     sources, so it differs from n22's restricted sweep only by policy). *)
  List.iter
    (fun p ->
      match p.Hier_ssta.Path_report.vertices with
      | first :: _ ->
          Alcotest.(check bool) "no path from n1 into n22" true (first <> 0)
      | [] -> Alcotest.fail "empty path")
    n22.Design.paths;
  Alcotest.(check bool) "n22 keeps true paths" true (n22.Design.arrival <> None);
  Alcotest.(check bool) "n23 unaffected" true (n23.Design.arrival <> None);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Design.port ^ " p_met in [0,1]")
        true
        (e.Design.p_met >= 0.0 && e.Design.p_met <= 1.0))
    checks.Design.endpoints

let test_fuzz_corpus_golden () =
  let ctx = Fuzz.make_ctx "c432" in
  let verdicts = Fuzz.run_corpus ctx ~seed:42 ~cases_per_class:175 in
  Alcotest.(check int) "corpus size" 3150 (List.length verdicts);
  Alcotest.(check bool)
    ("no escaped exceptions:\n" ^ Fuzz.summary verdicts)
    true (Fuzz.all_pass verdicts);
  (* Bit-stable against the committed verdict stream: same seed, same
     corpus, byte for byte - regardless of PAR_DOMAINS. *)
  Alcotest.(check string)
    "verdict stream matches committed golden"
    (read_file "golden/frontend_fuzz_verdicts.jsonl")
    (Fuzz.jsonl_of_verdicts verdicts)

let test_malformed_inputs () =
  let fails fmt parse src =
    match parse src with
    | (_ : unit) -> Alcotest.fail (fmt ^ ": expected a structured error")
    | exception Ssta_robust.Robust.Error ctx ->
        Alcotest.(check bool)
          (fmt ^ " error carries a position")
          true
          (ctx.Ssta_robust.Robust.pos <> None)
  in
  fails "verilog" (fun s -> ignore (Verilog.parse s)) "module m (a; endmodule";
  fails "liberty" (fun s -> ignore (Liberty.parse s)) "library (l) { cell (x) { } }";
  fails "sdc" (fun s -> ignore (Sdc.parse s)) "create_clock -period -5 -name c"

let suites =
  [
    ( "frontend.golden",
      [
        Alcotest.test_case "c17 parse = hand-built (netlist+model)" `Quick
          test_c17_golden;
        Alcotest.test_case "c432 parse = Iscas.build (netlist+model)" `Slow
          test_c432_golden;
      ] );
    ( "frontend.roundtrip",
      [
        qcheck_roundtrip "verilog print/parse round-trip" prop_verilog_roundtrip;
        qcheck_roundtrip "liberty print/parse round-trip" prop_liberty_roundtrip;
        qcheck_roundtrip "design lower round-trip" prop_lower_roundtrip;
        qcheck_roundtrip "sdc print/parse fixpoint" prop_sdc_roundtrip;
      ] );
    ( "frontend.checks",
      [
        Alcotest.test_case "report_checks excludes false path" `Quick
          test_report_checks_false_path;
        Alcotest.test_case "malformed inputs fail structurally" `Quick
          test_malformed_inputs;
      ] );
    ( "frontend.fuzz",
      [
        Alcotest.test_case "corpus deterministic, zero escapes" `Quick
          test_fuzz_corpus_golden;
      ] );
  ]
