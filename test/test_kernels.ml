(* Property tests for the allocation-free canonical-form kernels
   (Ssta_canonical.Form_buf) and the workspace-reusing propagation tier:
   every kernel must agree with the pure Form/Propagate implementation -
   bit for bit, which is stronger than the 1e-12 the extraction accuracy
   argument needs - over randomized dimensions, including degenerate
   [n_pcs = 0] / [n_globals = 0] layouts and the tightness 0/1 branches of
   the statistical max. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Rng = Ssta_gauss.Rng
module Normal = Ssta_gauss.Normal

let exactly_equal a b =
  a.Form.mean = b.Form.mean
  && a.Form.rand = b.Form.rand
  && a.Form.globals = b.Form.globals
  && a.Form.pcs = b.Form.pcs

let check_exact msg expected actual =
  if not (exactly_equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.actual   %a" msg Form.pp expected
      Form.pp actual

(* Dimension mix exercised by every property, covering the degenerate
   layouts the strided kernels special-case implicitly. *)
let dim_cases =
  [
    { Form.n_globals = 0; n_pcs = 0 };
    { Form.n_globals = 3; n_pcs = 0 };
    { Form.n_globals = 0; n_pcs = 5 };
    { Form.n_globals = 2; n_pcs = 4 };
    { Form.n_globals = 3; n_pcs = 37 };
  ]

let random_form rng (dims : Form.dims) =
  Form.make
    ~mean:(20.0 *. Rng.uniform rng)
    ~globals:(Array.init dims.Form.n_globals (fun _ -> Rng.gaussian rng))
    ~pcs:(Array.init dims.Form.n_pcs (fun _ -> Rng.gaussian rng))
    ~rand:(abs_float (Rng.gaussian rng))

(* A 3-slot scratch buffer per case: operands in slots 0/1, result in 2. *)
let with_pairs seed f =
  List.iter
    (fun dims ->
      let rng = Rng.create ~seed in
      for _ = 1 to 25 do
        let a = random_form rng dims and b = random_form rng dims in
        f dims a b
      done;
      (* Degenerate tightness branches: an identical zero-random pair
         (theta^2 = 0, tightness 1 via the constant-difference branch of
         Clark) and a hopelessly dominated pair (tightness exactly 0 after
         the CDF underflows). *)
      let a = { (random_form rng dims) with Form.rand = 0.0 } in
      f dims a a;
      let lo = random_form rng dims in
      f dims lo (Form.add_const lo 1000.0);
      f dims (Form.add_const lo 1000.0) lo)
    dim_cases

let prop_add_into seed =
  with_pairs seed (fun dims a b ->
      let buf = Form_buf.of_forms dims [| a; b; Form.zero dims |] in
      Form_buf.add_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:2;
      check_exact "add_into = Form.add" (Form.add a b) (Form_buf.get buf 2);
      (* Aliasing: accumulate in place over slot 0. *)
      Form_buf.add_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:0;
      check_exact "add_into aliased dst" (Form.add a b) (Form_buf.get buf 0));
  true

let prop_max2_into seed =
  with_pairs seed (fun dims a b ->
      let buf = Form_buf.of_forms dims [| a; b; Form.zero dims |] in
      Form_buf.max2_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:2;
      check_exact "max2_into = Form.max2" (Form.max2 a b) (Form_buf.get buf 2);
      Form_buf.max2_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:1;
      check_exact "max2_into aliased dst" (Form.max2 a b) (Form_buf.get buf 1));
  true

let prop_add_then_max_into seed =
  with_pairs seed (fun dims a b ->
      let rng = Rng.create ~seed:(seed + 1) in
      let prev = random_form rng dims in
      let buf = Form_buf.of_forms dims [| a; b; prev |] in
      Form_buf.add_then_max_into ~acc:buf ~iacc:2 ~a:buf ~ia:0 ~b:buf ~ib:1;
      check_exact "add_then_max_into = max2 prev (add a b)"
        (Form.max2 prev (Form.add a b))
        (Form_buf.get buf 2));
  true

(* The fused moment gather must agree with the twelve scalar probes it
   replaces in the criticality exact-evaluation loop. *)
let prop_quad_stats seed =
  List.iter
    (fun dims ->
      let rng = Rng.create ~seed in
      for _ = 1 to 25 do
        let a = random_form rng dims
        and e = random_form rng dims
        and r = random_form rng dims
        and m = random_form rng dims in
        let buf = Form_buf.of_forms dims [| a; e; r; m |] in
        let q = Array.make Form_buf.quad_size nan in
        Form_buf.quad_stats_into ~a:buf ~ia:0 ~e:buf ~ie:1 ~r:buf ~ir:2
          ~m:buf ~im:3 ~into:q;
        if
          not
            (q.(Form_buf.quad_var_a) = Form.variance a
            && q.(Form_buf.quad_var_r) = Form.variance r
            && q.(Form_buf.quad_cov_ae) = Form.covariance a e
            && q.(Form_buf.quad_cov_ar) = Form.covariance a r
            && q.(Form_buf.quad_cov_er) = Form.covariance e r
            && q.(Form_buf.quad_cov_am) = Form.covariance a m
            && q.(Form_buf.quad_cov_em) = Form.covariance e m
            && q.(Form_buf.quad_cov_rm) = Form.covariance r m
            && q.(Form_buf.quad_rand_a) = a.Form.rand
            && q.(Form_buf.quad_rand_e) = e.Form.rand
            && q.(Form_buf.quad_rand_r) = r.Form.rand
            && q.(Form_buf.quad_rand_m) = m.Form.rand)
        then Alcotest.fail "quad_stats_into disagrees with scalar probes"
      done)
    dim_cases;
  true

(* The per-visit covariance gather of the blocked screen: both the lone
   kernel and the two-lane batch must agree with the Form.covariance
   probes bit for bit — the batch is pure instruction scheduling, never a
   different accumulation. *)
let prop_cov4 seed =
  List.iter
    (fun dims ->
      let rng = Rng.create ~seed in
      for _ = 1 to 25 do
        let forms = Array.init 7 (fun _ -> random_form rng dims) in
        let buf = Form_buf.of_forms dims forms in
        let check ~ia ~ie ~ir ~im (got : float array) base =
          let c name x y =
            if x <> y then
              Alcotest.failf "cov4 %s: %h <> %h (probe)" name x y
          in
          c "ar" got.(base + Form_buf.cov4_ar)
            (Form.covariance forms.(ia) forms.(ir));
          c "em" got.(base + Form_buf.cov4_em)
            (Form.covariance forms.(ie) forms.(im));
          c "am" got.(base + Form_buf.cov4_am)
            (Form.covariance forms.(ia) forms.(im));
          c "rm" got.(base + Form_buf.cov4_rm)
            (Form.covariance forms.(ir) forms.(im))
        in
        let lone = Array.make Form_buf.cov4_size nan in
        Form_buf.cov4_into ~a:buf ~ia:0 ~e:buf ~ie:1 ~r:buf ~ir:2 ~m:buf
          ~im:6 ~into:lone;
        check ~ia:0 ~ie:1 ~ir:2 ~im:6 lone 0;
        (* Two independent lanes sharing the m slot, exactly as the screen
           batches survivors of one walk. *)
        let batched =
          Array.make (Form_buf.cov4_lanes * Form_buf.cov4_size) nan
        in
        Form_buf.cov4_batch2_into ~a:buf ~e:buf ~r:buf ~m:buf ~im:6
          ~srcs:[| 0; 3 |] ~dsts:[| 2; 5 |] ~edges:[| 1; 4 |] ~into:batched;
        check ~ia:0 ~ie:1 ~ir:2 ~im:6 batched 0;
        check ~ia:3 ~ie:4 ~ir:5 ~im:6 batched Form_buf.cov4_size
      done)
    dim_cases;
  true

(* The scratch-array Clark must be bit-identical to the record-returning
   original, including the constant-difference degenerate branch. *)
let prop_clark_into seed =
  let rng = Rng.create ~seed in
  let check ~mean_a ~var_a ~mean_b ~var_b ~cov =
    let want = Normal.clark_max ~mean_a ~var_a ~mean_b ~var_b ~cov in
    let s = [| mean_a; var_a; mean_b; var_b; cov |] in
    Normal.clark_max_into s;
    if
      not
        (s.(0) = want.Normal.tightness
        && s.(1) = want.Normal.mean
        && s.(2) = want.Normal.variance)
    then
      Alcotest.failf
        "clark_max_into (%g,%g,%g,%g,%g): got (%g,%g,%g) want (%g,%g,%g)"
        mean_a var_a mean_b var_b cov s.(0) s.(1) s.(2)
        want.Normal.tightness want.Normal.mean want.Normal.variance
  in
  for _ = 1 to 200 do
    let mean_a = 20.0 *. Rng.gaussian rng
    and mean_b = 20.0 *. Rng.gaussian rng
    and sa = abs_float (Rng.gaussian rng)
    and sb = abs_float (Rng.gaussian rng)
    and rho = 2.0 *. (Rng.uniform rng -. 0.5) in
    check ~mean_a ~var_a:(sa *. sa) ~mean_b ~var_b:(sb *. sb)
      ~cov:(rho *. sa *. sb)
  done;
  (* Degenerate: theta^2 = 0 exactly, both mean orderings, and the
     tightness-0/1 saturation of far-apart operands. *)
  check ~mean_a:3.0 ~var_a:4.0 ~mean_b:1.0 ~var_b:4.0 ~cov:4.0;
  check ~mean_a:1.0 ~var_a:4.0 ~mean_b:3.0 ~var_b:4.0 ~cov:4.0;
  check ~mean_a:1000.0 ~var_a:1.0 ~mean_b:0.0 ~var_b:1.0 ~cov:0.0;
  check ~mean_a:0.0 ~var_a:1.0 ~mean_b:1000.0 ~var_b:1.0 ~cov:0.0;
  true

let prop_scalar_probes seed =
  with_pairs seed (fun dims a b ->
      let buf = Form_buf.of_forms dims [| a; b |] in
      if
        not
          (Form_buf.mean buf 0 = a.Form.mean
          && Form_buf.rand_coeff buf 1 = b.Form.rand
          && Form_buf.variance buf 0 = Form.variance a
          && Form_buf.std buf 1 = Form.std b
          && Form_buf.covariance buf 0 buf 1 = Form.covariance a b)
      then Alcotest.fail "scalar probe mismatch");
  true

(* Random DAG in the shape of test_property's, parameterized by dims. *)
let random_dag seed dims =
  let rng = Rng.create ~seed in
  let n = 4 + Rng.int rng 24 in
  let n_roots = 1 + Rng.int rng (max 1 (n / 4)) in
  let edges = ref [] in
  for v = n_roots to n - 1 do
    let fanins = 1 + Rng.int rng 3 in
    let seen = Hashtbl.create 4 in
    for _ = 1 to fanins do
      let s = Rng.int rng v in
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.replace seen s ();
        edges := (s, v) :: !edges
      end
    done
  done;
  let edges = Array.of_list (List.rev !edges) in
  let has_fanout = Array.make n false and has_fanin = Array.make n false in
  Array.iter
    (fun (s, d) ->
      has_fanout.(s) <- true;
      has_fanin.(d) <- true)
    edges;
  let inputs = ref [] and outputs = ref [] in
  for v = 0 to n - 1 do
    if not has_fanin.(v) then inputs := v :: !inputs;
    if not has_fanout.(v) then outputs := v :: !outputs
  done;
  let g =
    Tgraph.make ~n_vertices:n ~edges
      ~inputs:(Array.of_list (List.rev !inputs))
      ~outputs:(Array.of_list (List.rev !outputs))
  in
  let forms =
    Array.init (Tgraph.n_edges g) (fun _ -> random_form rng dims)
  in
  (g, forms)

let sweep_equal n ws reference =
  Array.for_all2
    (fun got want ->
      match (got, want) with
      | None, None -> true
      | Some a, Some b -> exactly_equal a b
      | _ -> false)
    (Array.init n (fun v -> H.Propagate.ws_form ws v))
    reference

(* One workspace reused across many graphs, dims, directions and repeated
   calls: every sweep must match the pure implementation bit for bit, i.e.
   no state leaks from any previous sweep. *)
let prop_workspace_reuse seed =
  let ws = H.Propagate.create_workspace () in
  let ok = ref true in
  List.iteri
    (fun k dims ->
      let g, forms = random_dag (seed + (1000 * k)) dims in
      let fbuf = Form_buf.of_forms dims forms in
      let n = Tgraph.n_vertices g in
      Array.iter
        (fun i ->
          let reference = H.Propagate.forward g ~forms ~sources:[| i |] in
          (* Twice through the same (dirty) workspace: both calls must
             reproduce the pure pass exactly. *)
          H.Propagate.forward_into ws g ~forms:fbuf ~sources:[| i |];
          if not (sweep_equal n ws reference) then ok := false;
          H.Propagate.forward_into ws g ~forms:fbuf ~sources:[| i |];
          if not (sweep_equal n ws reference) then ok := false)
        g.Tgraph.inputs;
      Array.iter
        (fun o ->
          let reference = H.Propagate.backward_to g ~forms o in
          H.Propagate.backward_to_into ws g ~forms:fbuf o;
          if not (sweep_equal n ws reference) then ok := false)
        g.Tgraph.outputs)
    dim_cases;
  !ok

(* Blocked multi-output backward propagation: every workspace of a block
   must be bit-identical to its own backward_to_into sweep, whatever the
   block size and wherever the block boundaries fall - the tentpole
   guarantee the tiled criticality screen's backward phase rests on. *)
let prop_backward_block seed =
  let ok = ref true in
  List.iteri
    (fun k dims ->
      let g, forms = random_dag (seed + (1000 * k)) dims in
      let fbuf = Form_buf.of_forms dims forms in
      let n = Tgraph.n_vertices g in
      let outs = g.Tgraph.outputs in
      let no = Array.length outs in
      let reference =
        Array.map
          (fun o ->
            let ws = H.Propagate.create_workspace () in
            H.Propagate.backward_to_into ws g ~forms:fbuf o;
            Array.init n (fun v -> H.Propagate.ws_form ws v))
          outs
      in
      List.iter
        (fun block ->
          let wss =
            Array.init no (fun _ -> H.Propagate.create_workspace ())
          in
          let lo = ref 0 in
          while !lo < no do
            let hi = min no (!lo + block) in
            H.Propagate.backward_block_into wss g ~forms:fbuf ~outs ~lo:!lo
              ~hi;
            lo := hi
          done;
          for j = 0 to no - 1 do
            if not (sweep_equal n wss.(j) reference.(j)) then ok := false
          done)
        [ 1; 3; max no 1 ])
    dim_cases;
  !ok

let prop_forward_all_matches seed =
  let dims = { Form.n_globals = 2; n_pcs = 4 } in
  let g, forms = random_dag seed dims in
  let ws = H.Propagate.create_workspace () in
  H.Propagate.forward_into ws g
    ~forms:(Form_buf.of_forms dims forms)
    ~sources:g.Tgraph.inputs;
  sweep_equal (Tgraph.n_vertices g) ws (H.Propagate.forward_all g ~forms)

(* Slab-carved buffers must be indistinguishable from freshly allocated
   ones: same kernel results bit for bit, at arbitrary carve offsets,
   across a reset/reuse cycle - the storage guarantee the batch engine's
   per-worker slabs rely on. *)
let prop_slab_carving seed =
  with_pairs seed (fun dims a b ->
      (* Capacity-planned: a junk buffer first so the operands land at a
         nonzero slab offset, then the 3-slot working buffer. *)
      let junk = 2 + (seed mod 5) in
      let slab =
        Form_buf.slab_create
          (Form_buf.floats_needed dims junk
          + (2 * Form_buf.floats_needed dims 3))
      in
      let run () =
        let _pad = Form_buf.create ~slab dims junk in
        let buf = Form_buf.create ~slab dims 3 in
        Form_buf.set buf 0 a;
        Form_buf.set buf 1 b;
        Form_buf.add_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:2;
        check_exact "slab add_into" (Form.add a b) (Form_buf.get buf 2);
        Form_buf.max2_into ~a:buf ~ia:0 ~b:buf ~ib:1 ~dst:buf ~idst:2;
        check_exact "slab max2_into" (Form.max2 a b) (Form_buf.get buf 2)
      in
      run ();
      (* A second carve fits the remaining capacity (2x the 3-slot need
         was planned), so the slab must not have grown... *)
      if Form_buf.slab_grows slab <> 0 then
        Alcotest.fail "capacity-planned slab grew";
      (* ...and a reset rewinds the cursor: the same carves replay on the
         same storage with the same results. *)
      Form_buf.slab_reset slab;
      let used0 = Form_buf.slab_used_floats slab in
      if used0 <> 0 then Alcotest.fail "slab_reset left a nonzero cursor";
      run ();
      if Form_buf.slab_grows slab <> 0 then
        Alcotest.fail "slab grew after reset";
      (* An undersized slab grows (counted) but stays correct: old views
         keep their backing alive. *)
      let tiny = Form_buf.slab_create 1 in
      let keep = Form_buf.create ~slab:tiny dims 1 in
      Form_buf.set keep 0 a;
      let more = Form_buf.create ~slab:tiny dims 3 in
      Form_buf.set more 0 b;
      if Form_buf.slab_grows tiny = 0 then
        Alcotest.fail "undersized slab did not count its growth";
      check_exact "view survives slab growth" a (Form_buf.get keep 0);
      check_exact "post-growth carve works" b (Form_buf.get more 0));
  true

(* recompose_into is the batch engine's scenario transform: mean replaced,
   every coefficient scaled by beta, the independent term by |beta|. *)
let prop_recompose seed =
  with_pairs seed (fun dims a b ->
      let buf = Form_buf.of_forms dims [| a; b |] in
      let mean = b.Form.mean and beta = b.Form.rand -. 0.5 in
      Form_buf.recompose_into ~mean ~beta ~a:buf ~ia:0 ~dst:buf ~idst:1;
      let want =
        Form.make ~mean
          ~globals:(Array.map (fun c -> beta *. c) a.Form.globals)
          ~pcs:(Array.map (fun c -> beta *. c) a.Form.pcs)
          ~rand:(abs_float beta *. a.Form.rand)
      in
      check_exact "recompose_into" want (Form_buf.get buf 1);
      (* Aliased: recomposing a slot onto itself. *)
      Form_buf.recompose_into ~mean ~beta ~a:buf ~ia:0 ~dst:buf ~idst:0;
      check_exact "recompose_into aliased" want (Form_buf.get buf 0));
  true

(* The cone-restricted sweep must be bit-identical to the full sweep
   whenever the range covers the reachable cone of the sources - the
   contract the batch engine's shared CSR cone index depends on. *)
let prop_forward_cone seed =
  let dims = { Form.n_globals = 2; n_pcs = 4 } in
  let g, forms = random_dag seed dims in
  let fbuf = Form_buf.of_forms dims forms in
  let m = Tgraph.n_edges g in
  let n = Tgraph.n_vertices g in
  let ws = H.Propagate.create_workspace () in
  let ws_cone = H.Propagate.create_workspace () in
  let all_edges = Array.init m (fun e -> e) in
  let ok = ref true in
  Array.iter
    (fun i ->
      let sources = [| i |] in
      H.Propagate.forward_into ws g ~forms:fbuf ~sources;
      let reference =
        Array.init n (fun v -> H.Propagate.ws_form ws v)
      in
      (* Exact cone of the source, embedded at an offset inside a larger
         shared array - the CSR layout the batch engine uses. *)
      let seen = Tgraph.reachable_from g i in
      let cone = ref [] in
      for e = m - 1 downto 0 do
        if seen.(g.Tgraph.src.(e)) then cone := e :: !cone
      done;
      let cone = Array.of_list !cone in
      let lo = 3 in
      let shared = Array.make (lo + Array.length cone + 2) 0 in
      Array.blit cone 0 shared lo (Array.length cone);
      H.Propagate.forward_cone_into ws_cone g ~forms:fbuf ~sources
        ~edges:shared ~lo ~hi:(lo + Array.length cone);
      if not (sweep_equal n ws_cone reference) then ok := false;
      (* The full edge range keeps the same reached-source guard as
         forward_into, so it too must reproduce the reference exactly. *)
      H.Propagate.forward_cone_into ws_cone g ~forms:fbuf ~sources
        ~edges:all_edges ~lo:0 ~hi:m;
      if not (sweep_equal n ws_cone reference) then ok := false)
    g.Tgraph.inputs;
  !ok

let test prop name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name QCheck.(int_range 0 100_000) prop)

let suites =
  [
    ( "kernels.form_buf",
      [
        test prop_add_into "add_into agrees with Form.add (bit-exact)";
        test prop_max2_into "max2_into agrees with Form.max2 (bit-exact)";
        test prop_add_then_max_into
          "fused add_then_max agrees with max2 o add (bit-exact)";
        test prop_scalar_probes "scalar probes agree with Form";
        test prop_quad_stats "fused moment gather agrees with probes";
        test prop_cov4
          "cov4 gather and two-lane batch agree with probes (bit-exact)";
        test prop_clark_into "clark_max_into agrees with clark_max";
        test prop_slab_carving
          "slab-carved buffers match fresh buffers (bit-exact)";
        test prop_recompose "recompose_into scales coefficients exactly";
      ] );
    ( "kernels.workspace",
      [
        test prop_workspace_reuse
          "reused workspace reproduces pure forward/backward exactly";
        test prop_forward_all_matches "forward_into from all inputs";
        test prop_backward_block
          "blocked backward = per-output sweeps at every block size";
        test prop_forward_cone
          "cone-restricted sweep matches full sweep (bit-exact)";
      ] );
  ]
