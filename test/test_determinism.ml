(* Golden determinism pins for the Monte Carlo reference engines: the
   allocation-free kernel refactor must not perturb them in any way, so the
   c432 results at a fixed seed are pinned bit for bit (the golden constants
   below were produced by the pre-refactor seed tree and are asserted with
   exact float equality, not a tolerance). *)

module Build = Ssta_timing.Build
module Iscas = Ssta_circuit.Iscas
module Stats = Ssta_gauss.Stats

let ctx = lazy (Ssta_mc.Sampler.ctx_of_build (Build.characterize (Iscas.build "c432")))

(* Each golden runs once on the ambient (PAR_DOMAINS-controlled) pool and
   once pinned to 4 domains: the chunked parallel engine must reproduce the
   pre-refactor sequential stream bit for bit at every domain count. *)
let with_pool f () =
  f ();
  Ssta_par.Par.with_domains 4 f

let test_allpairs_golden () =
  let mc = Ssta_mc.Allpairs_mc.run ~iterations:250 ~seed:42 (Lazy.force ctx) in
  (* Order-stable checksums over every reachable pair: any change to the
     sampler, the RNG stream, or the longest-path pass shifts them. *)
  let sum_m = ref 0.0 and sum_s = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j m ->
          if mc.Ssta_mc.Allpairs_mc.reachable.(i).(j) then begin
            sum_m := !sum_m +. m;
            sum_s := !sum_s +. mc.Ssta_mc.Allpairs_mc.stds.(i).(j)
          end)
        row)
    mc.Ssta_mc.Allpairs_mc.means;
  Alcotest.(check (float 0.0))
    "sum of pair means (byte-identical)" 86896.430807530531 !sum_m;
  Alcotest.(check (float 0.0))
    "sum of pair stds (byte-identical)" 14484.382291526943 !sum_s

let test_flat_golden () =
  let mc = Ssta_mc.Flat_mc.run ~iterations:250 ~seed:7 (Lazy.force ctx) in
  Alcotest.(check (float 0.0))
    "flat MC mean (byte-identical)" 710.41728208984875
    (Stats.mean mc.Ssta_mc.Flat_mc.delays);
  Alcotest.(check (float 0.0))
    "flat MC std (byte-identical)" 99.596999898712568
    (Stats.std mc.Ssta_mc.Flat_mc.delays)

let suites =
  [
    ( "determinism.mc_golden",
      [
        Alcotest.test_case "allpairs_mc c432@250 seed=42" `Slow
          (with_pool test_allpairs_golden);
        Alcotest.test_case "flat_mc c432@250 seed=7" `Slow
          (with_pool test_flat_golden);
      ] );
  ]
