(* Tests for timing graphs, deterministic STA and the characterization
   context that binds netlist, placement, grid and canonical forms. *)

module Tgraph = Ssta_timing.Tgraph
module Sta = Ssta_timing.Sta
module Build = Ssta_timing.Build
module N = Ssta_circuit.Netlist
module L = Ssta_cell.Library
module Form = Ssta_canonical.Form
module Rng = Ssta_gauss.Rng

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* A hand-built diamond:  0 -> 2 -> 4, 0 -> 3 -> 4, 1 -> 3.
   Vertices 0,1 inputs; vertex 4 output. *)
let diamond () =
  Tgraph.make ~n_vertices:5
    ~edges:[| (0, 2); (0, 3); (1, 3); (2, 4); (3, 4) |]
    ~inputs:[| 0; 1 |] ~outputs:[| 4 |]

let test_tgraph_construction () =
  let g = diamond () in
  Alcotest.(check int) "edges" 5 (Tgraph.n_edges g);
  Alcotest.(check int) "vertices" 5 (Tgraph.n_vertices g);
  Alcotest.(check int) "fanout of 0" 2 (Array.length g.Tgraph.fanout.(0));
  Alcotest.(check int) "fanin range of 3" 2
    (g.Tgraph.fanin_hi.(3) - g.Tgraph.fanin_lo.(3))

let test_tgraph_rejects_disorder () =
  Alcotest.(check bool)
    "source before its fanins" true
    (try
       ignore
         (Tgraph.make ~n_vertices:3
            ~edges:[| (1, 2); (0, 1) |]
            ~inputs:[| 0 |] ~outputs:[| 2 |]);
       false
     with Ssta_robust.Robust.Error ctx ->
       ctx.Ssta_robust.Robust.subsystem = "timing.tgraph"
       && ctx.Ssta_robust.Robust.indices <> [])

let test_make_sorted_recovers () =
  (* Shuffled edges are re-sorted; arrival times agree with the reference. *)
  let edges = [| (2, 4); (0, 2); (3, 4); (1, 3); (0, 3) |] in
  let weights = [| 4.0; 1.0; 5.0; 2.0; 3.0 |] in
  let g, perm =
    Tgraph.make_sorted ~n_vertices:5 ~edges ~inputs:[| 0; 1 |]
      ~outputs:[| 4 |]
  in
  let w = Array.map (fun i -> weights.(i)) perm in
  let arr = Sta.forward g ~weights:w in
  (* Longest: 0 ->(3.0) 3 ->(5.0) 4 = 8; 0 ->(1) 2 ->(4) 4 = 5. *)
  close "arrival at 4" 8.0 arr.(4);
  close "arrival at 2" 1.0 arr.(2)

let test_make_sorted_rejects_cycle () =
  Alcotest.(check bool)
    "cycle rejected" true
    (try
       ignore
         (Tgraph.make_sorted ~n_vertices:2
            ~edges:[| (0, 1); (1, 0) |]
            ~inputs:[||] ~outputs:[||]);
       false
     with Ssta_robust.Robust.Error ctx ->
       (* The named vertex must actually lie on the cycle. *)
       ctx.Ssta_robust.Robust.subsystem = "timing.tgraph"
       && (match ctx.Ssta_robust.Robust.indices with
          | v :: _ -> v = 0 || v = 1
          | [] -> false))

let test_sta_forward () =
  let g = diamond () in
  let weights = [| 1.0; 10.0; 2.0; 5.0; 1.0 |] in
  let arr = Sta.forward g ~weights in
  close "arr 2" 1.0 arr.(2);
  close "arr 3" 10.0 arr.(3);
  close "arr 4" 11.0 arr.(4);
  close "design delay" 11.0 (Sta.design_delay g ~weights)

let test_sta_forward_from () =
  let g = diamond () in
  let weights = [| 1.0; 10.0; 2.0; 5.0; 1.0 |] in
  let arr = Sta.forward_from g ~weights 1 in
  Alcotest.(check bool) "2 unreachable from 1" true (arr.(2) = neg_infinity);
  close "arr 3 from 1" 2.0 arr.(3);
  close "arr 4 from 1" 3.0 arr.(4)

let test_sta_backward () =
  let g = diamond () in
  let weights = [| 1.0; 10.0; 2.0; 5.0; 1.0 |] in
  let req = Sta.backward_to g ~weights 4 in
  close "req at output" 0.0 req.(4);
  close "req at 2" 5.0 req.(2);
  close "req at 0" 11.0 req.(0);
  close "req at 1" 3.0 req.(1)

let test_sta_critical_path () =
  let g = diamond () in
  let weights = [| 1.0; 10.0; 2.0; 5.0; 1.0 |] in
  match Sta.critical_path g ~weights with
  | [ 0; 3; 4 ] -> ()
  | p ->
      Alcotest.fail
        ("unexpected critical path: "
        ^ String.concat "," (List.map string_of_int p))

let test_of_netlist_counts () =
  let nl = Ssta_circuit.Iscas.build "c499" in
  let g = Tgraph.of_netlist nl in
  Alcotest.(check int) "edges = fanins" (N.n_edges nl) (Tgraph.n_edges g);
  Alcotest.(check int) "vertices = nodes" (N.n_nodes nl) (Tgraph.n_vertices g);
  Alcotest.(check int) "inputs" (N.n_pis nl) (Array.length g.Tgraph.inputs)

let test_reachability () =
  let g = diamond () in
  let r = Tgraph.reachable_from g 1 in
  Alcotest.(check bool) "1 reaches 3" true r.(3);
  Alcotest.(check bool) "1 reaches 4" true r.(4);
  Alcotest.(check bool) "1 does not reach 2" false r.(2);
  let b = Tgraph.reaches g 2 in
  Alcotest.(check bool) "0 reaches 2" true b.(0);
  Alcotest.(check bool) "1 cannot reach 2" false b.(1)

(* ------------------------------------------------------------------ *)
(* Characterization context                                            *)
(* ------------------------------------------------------------------ *)

let test_characterize_consistency () =
  let nl = Ssta_circuit.Iscas.build "c432" in
  let b = Build.characterize nl in
  Alcotest.(check int)
    "forms per edge"
    (Tgraph.n_edges b.Build.graph)
    (Array.length b.Build.forms);
  Alcotest.(check int)
    "sparse per edge"
    (Tgraph.n_edges b.Build.graph)
    (Array.length b.Build.sparse);
  (* Canonical form and sparse description must agree on mean and total
     variance for every edge. *)
  Array.iteri
    (fun e (s : Build.sparse_edge) ->
      let f = b.Build.forms.(e) in
      close ~tol:1e-9 "mean = nominal" s.Build.nominal f.Form.mean;
      let corr = b.Build.basis.Ssta_variation.Basis.corr in
      let module C = Ssta_variation.Correlation in
      let expected_var =
        Array.fold_left
          (fun acc sv ->
            acc
            +. (s.Build.nominal *. sv *. s.Build.nominal *. sv
               *. (corr.C.var_global +. corr.C.var_local)))
          (s.Build.random_sigma *. s.Build.random_sigma)
          s.Build.sens
      in
      (* 0.5% headroom for the documented PCA eigenvalue clamping. *)
      if abs_float (Form.variance f -. expected_var) > 5e-3 *. expected_var
      then
        Alcotest.fail
          (Printf.sprintf "edge %d variance mismatch: %g vs %g" e
             (Form.variance f) expected_var))
    b.Build.sparse

let test_characterize_grid_budget () =
  let nl = Ssta_circuit.Iscas.build "c880" in
  let b = Build.characterize nl in
  let counts =
    Ssta_circuit.Placement.cells_per_tile b.Build.placement b.Build.grid
  in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "under 100 cells" true (c <= 100))
    counts

let test_nominal_weights_positive () =
  let nl = Ssta_circuit.Iscas.build "c499" in
  let b = Build.characterize nl in
  Array.iter
    (fun w -> Alcotest.(check bool) "positive weight" true (w > 0.0))
    (Build.nominal_weights b)

let test_characterize_sampling_agreement () =
  (* A sampled edge delay has the same mean/std under the sparse MC model
     and under the canonical form. *)
  let nl = Ssta_circuit.Adder.ripple ~bits:4 () in
  let b = Build.characterize nl in
  let ctx = Ssta_mc.Sampler.ctx_of_build b in
  let rng = Rng.create ~seed:123 in
  let e = 5 in
  let acc = Ssta_gauss.Stats.Welford.create () in
  for _ = 1 to 20_000 do
    let s = Ssta_mc.Sampler.draw b.Build.basis rng in
    Ssta_gauss.Stats.Welford.add acc (Ssta_mc.Sampler.edge_delay ctx s rng e)
  done;
  let f = b.Build.forms.(e) in
  close ~tol:(0.02 *. f.Form.mean) "sample mean" f.Form.mean
    (Ssta_gauss.Stats.Welford.mean acc);
  close ~tol:(0.05 *. Form.std f) "sample std" (Form.std f)
    (Ssta_gauss.Stats.Welford.std acc)

let suites =
  [
    ( "timing.tgraph",
      [
        Alcotest.test_case "construction" `Quick test_tgraph_construction;
        Alcotest.test_case "rejects disorder" `Quick
          test_tgraph_rejects_disorder;
        Alcotest.test_case "make_sorted recovers order" `Quick
          test_make_sorted_recovers;
        Alcotest.test_case "make_sorted rejects cycles" `Quick
          test_make_sorted_rejects_cycle;
        Alcotest.test_case "of_netlist counts" `Quick test_of_netlist_counts;
        Alcotest.test_case "reachability" `Quick test_reachability;
      ] );
    ( "timing.sta",
      [
        Alcotest.test_case "forward" `Quick test_sta_forward;
        Alcotest.test_case "forward from one input" `Quick
          test_sta_forward_from;
        Alcotest.test_case "backward required" `Quick test_sta_backward;
        Alcotest.test_case "critical path" `Quick test_sta_critical_path;
      ] );
    ( "timing.build",
      [
        Alcotest.test_case "forms/sparse consistency" `Quick
          test_characterize_consistency;
        Alcotest.test_case "grid cell budget" `Quick
          test_characterize_grid_budget;
        Alcotest.test_case "nominal weights" `Quick
          test_nominal_weights_positive;
        Alcotest.test_case "sampling agreement" `Slow
          test_characterize_sampling_agreement;
      ] );
  ]
