(* Equivalence suite for the cone-indexed criticality screen: on random
   DAGs the production screen (edge cones, destination bitmasks, settled
   compaction, output tiling, pooled scratch) must return bit-identical
   keep / cm / exact_evals / screened_pairs versus a naive full-scan
   reference that shares only the chunk layout and the per-pair
   arithmetic - at 1/2/4 domains, several tile sizes, both evaluation
   engines (blocked fast path and per-output reference), and in both
   threshold and exact modes.  Also pins the tile-knob parsers and their
   precedence, and the Form_buf rewrite of
   Extract.output_load_increments against the boxed Form.scale /
   Form.max_list fold it replaced. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Normal = Ssta_gauss.Normal
module Build = Ssta_timing.Build

(* Naive full-scan reference for the screen.  Structure deliberately kept
   dumb: chunks run sequentially, every chunk input gets its own retained
   workspace, every backward pass stays resident, and the inner loop walks
   all m edges per (output, input) pair rejecting unreachable endpoints by
   NaN-sentinel loads.  What it shares with the production screen is the
   semantics: the chunk layout (ceil(|I|/32)-sized input chunks), the
   per-chunk (output, input, edge) visit order, the settled-edge skip
   (bar = infinity: visited nowhere, counted nowhere), the disposal-only
   screened_pairs counter, and the exact per-pair arithmetic. *)
let reference ?(exact = false) ~delta g ~forms =
  let m = Tgraph.n_edges g and nv = Tgraph.n_vertices g in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let z_delta = Normal.quantile delta in
  let z_floor = Normal.quantile 1e-3 in
  let bar0 = if exact then z_floor else z_delta in
  let d_mu = Array.map (fun f -> f.Form.mean) forms in
  let d_var = Array.map Form.variance forms in
  let d_sig = Array.map sqrt d_var in
  let dims =
    if m = 0 then { Form.n_globals = 0; n_pcs = 0 } else Form.dims forms.(0)
  in
  let fbuf = Form_buf.of_forms dims forms in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  let req_mu = Array.make_matrix no (max nv 1) nan in
  let req_sig = Array.make_matrix no (max nv 1) nan in
  let passes =
    Array.init no (fun j ->
        let ws = H.Propagate.create_workspace () in
        H.Propagate.backward_to_into ws g ~forms:fbuf outputs.(j);
        H.Propagate.scalar_summaries_into ws ~n:nv ~mu:req_mu.(j)
          ~sigma:req_sig.(j);
        ws)
  in
  let input_chunk = max 1 ((ni + 31) / 32) in
  let n_chunks = if ni = 0 then 0 else (ni + input_chunk - 1) / input_chunk in
  let keep = Array.make m false in
  let cm_z = Array.make m neg_infinity in
  let exact_evals = ref 0 and screened = ref 0 in
  let quad = Array.make Form_buf.quad_size 0.0 in
  for c = 0 to n_chunks - 1 do
    let lo = c * input_chunk in
    let hi = min ni (lo + input_chunk) in
    let n_in = hi - lo in
    let bar = Array.make m bar0 in
    let ckeep = Array.make m false in
    let fwd =
      Array.init n_in (fun slot ->
          let ws = H.Propagate.create_workspace () in
          H.Propagate.forward_into ws g ~forms:fbuf
            ~sources:[| inputs.(lo + slot) |];
          ws)
    in
    let a_mu = Array.make_matrix (max n_in 1) (max nv 1) nan in
    let a_sig = Array.make_matrix (max n_in 1) (max nv 1) nan in
    Array.iteri
      (fun slot ws ->
        H.Propagate.scalar_summaries_into ws ~n:nv ~mu:a_mu.(slot)
          ~sigma:a_sig.(slot))
      fwd;
    for j = 0 to no - 1 do
      let out = outputs.(j) in
      let rmu = req_mu.(j) and rsig = req_sig.(j) in
      for slot = 0 to n_in - 1 do
        let ws = fwd.(slot) in
        if H.Propagate.ws_reached ws out then begin
          let abuf = H.Propagate.ws_buf ws in
          let m_mu = Form_buf.mean abuf out in
          let m_sig = Form_buf.std abuf out in
          let amu_row = a_mu.(slot) and asig_row = a_sig.(slot) in
          for e = 0 to m - 1 do
            let s = src.(e) in
            let amu = amu_row.(s) in
            if amu = amu (* reachable from input *) && bar.(e) < infinity
            then begin
              let d = dst.(e) in
              let rm = rmu.(d) in
              if rm = rm (* reaches output *) then begin
                let mu_de = amu +. d_mu.(e) +. rm in
                let theta_max =
                  asig_row.(s) +. d_sig.(e) +. rsig.(d) +. m_sig
                in
                let survivor =
                  if mu_de >= m_mu then true
                  else (mu_de -. m_mu) /. theta_max > bar.(e)
                in
                if survivor then begin
                  incr exact_evals;
                  let rbuf = H.Propagate.ws_buf passes.(j) in
                  Form_buf.quad_stats_into ~a:abuf ~ia:s ~e:fbuf ~ie:e
                    ~r:rbuf ~ir:d ~m:abuf ~im:out ~into:quad;
                  let var_de =
                    quad.(Form_buf.quad_var_a)
                    +. d_var.(e)
                    +. quad.(Form_buf.quad_var_r)
                    +. 2.0
                       *. (quad.(Form_buf.quad_cov_ae)
                          +. quad.(Form_buf.quad_cov_ar)
                          +. quad.(Form_buf.quad_cov_er))
                  in
                  let cov_dem =
                    quad.(Form_buf.quad_cov_am)
                    +. quad.(Form_buf.quad_cov_em)
                    +. quad.(Form_buf.quad_cov_rm)
                  in
                  let m_var = m_sig *. m_sig in
                  let theta2 = var_de +. m_var -. (2.0 *. cov_dem) in
                  let scale = var_de +. m_var +. 1e-30 in
                  let rand_de2 =
                    let ra = quad.(Form_buf.quad_rand_a)
                    and rd = quad.(Form_buf.quad_rand_e)
                    and rr = quad.(Form_buf.quad_rand_r) in
                    (ra *. ra) +. (rd *. rd) +. (rr *. rr)
                  in
                  let m_rand = quad.(Form_buf.quad_rand_m) in
                  let linear_dist2 =
                    var_de -. rand_de2 +. m_var -. (m_rand *. m_rand)
                    -. (2.0 *. cov_dem)
                  in
                  let same_path =
                    m_mu -. mu_de <= (0.02 *. m_sig) +. 1e-30
                    && linear_dist2 <= 1e-4 *. scale
                    && m_var <= var_de +. (1e-3 *. scale)
                  in
                  let z =
                    if same_path then infinity
                    else if theta2 <= 1e-12 *. scale then
                      if mu_de >= m_mu then infinity else neg_infinity
                    else (mu_de -. m_mu) /. sqrt theta2
                  in
                  if z >= z_delta then ckeep.(e) <- true;
                  if z > cm_z.(e) then cm_z.(e) <- z;
                  if exact then bar.(e) <- Float.max bar.(e) z
                  else if ckeep.(e) then bar.(e) <- infinity
                end
                else incr screened
              end
            end
          done
        end
      done
    done;
    for e = 0 to m - 1 do
      if ckeep.(e) then keep.(e) <- true
    done
  done;
  let cm =
    Array.map
      (fun z ->
        if z = neg_infinity then 0.0
        else if z = infinity then 1.0
        else Normal.cdf z)
      cm_z
  in
  { H.Criticality.keep; cm; exact_evals = !exact_evals;
    screened_pairs = !screened }

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let dim_cases =
  [
    { Form.n_globals = 0; n_pcs = 0 };
    { Form.n_globals = 3; n_pcs = 0 };
    { Form.n_globals = 2; n_pcs = 4 };
  ]

(* The central property: production screen == naive reference, bit for
   bit, in every (mode, domain count, tile size) combination. *)
let prop_screen_equivalence seed =
  List.iteri
    (fun k dims ->
      let g, forms = Test_kernels.random_dag (seed + (10_000 * k)) dims in
      List.iter
        (fun exact ->
          let want = reference ~exact ~delta:0.05 g ~forms in
          List.iter
            (fun domains ->
              List.iter
                (fun tile ->
                  List.iter
                    (fun engine ->
                      let got =
                        H.Criticality.compute ~exact ~domains ?tile ~engine
                          ~delta:0.05 g ~forms
                      in
                      let label =
                        Printf.sprintf
                          "seed=%d dims=(%d,%d) exact=%b domains=%d tile=%s \
                           engine=%s"
                          seed dims.Form.n_globals dims.Form.n_pcs exact
                          domains
                          (match tile with
                          | None -> "all"
                          | Some t -> string_of_int t)
                          (match engine with
                          | `Blocked -> "blocked"
                          | `Reference -> "reference")
                      in
                      if got.H.Criticality.keep <> want.H.Criticality.keep
                      then Alcotest.failf "%s: keep mask differs" label;
                      if
                        not
                          (bits_equal got.H.Criticality.cm
                             want.H.Criticality.cm)
                      then Alcotest.failf "%s: cm differs" label;
                      if
                        got.H.Criticality.exact_evals
                        <> want.H.Criticality.exact_evals
                      then
                        Alcotest.failf "%s: exact_evals %d <> %d" label
                          got.H.Criticality.exact_evals
                          want.H.Criticality.exact_evals;
                      if
                        got.H.Criticality.screened_pairs
                        <> want.H.Criticality.screened_pairs
                      then
                        Alcotest.failf "%s: screened_pairs %d <> %d" label
                          got.H.Criticality.screened_pairs
                          want.H.Criticality.screened_pairs)
                    [ `Blocked; `Reference ])
                [ None; Some 1; Some 3 ])
            [ 1; 2; 4 ])
        [ false; true ])
    dim_cases;
  true

(* The tile argument must be validated, not clamped silently. *)
let test_tile_validation () =
  let dims = { Form.n_globals = 2; n_pcs = 4 } in
  let g, forms = Test_kernels.random_dag 42 dims in
  Alcotest.check_raises "tile = 0 rejected"
    (Invalid_argument "Criticality.compute: tile must be at least 1")
    (fun () ->
      ignore (H.Criticality.compute ~tile:0 ~delta:0.05 g ~forms));
  (* An oversized tile is just the untiled screen. *)
  let a = H.Criticality.compute ~delta:0.05 g ~forms in
  let b = H.Criticality.compute ~tile:10_000 ~delta:0.05 g ~forms in
  Alcotest.(check bool) "oversized tile = untiled" true
    (a.H.Criticality.keep = b.H.Criticality.keep
    && bits_equal a.H.Criticality.cm b.H.Criticality.cm
    && a.H.Criticality.exact_evals = b.H.Criticality.exact_evals
    && a.H.Criticality.screened_pairs = b.H.Criticality.screened_pairs)

(* The pure parsers behind CRIT_TILE / --crit-tile / CRIT_TILE_BUDGET_MB:
   "auto" in any case, positive integers, and nothing else. *)
let test_tile_parsers () =
  let open H.Criticality in
  let tc = Alcotest.(check (option (of_pp (fun fmt -> function
    | Fixed n -> Format.fprintf fmt "Fixed %d" n
    | Auto -> Format.fprintf fmt "Auto")))) in
  tc "auto" (Some Auto) (tile_choice_of_string "auto");
  tc "case/space-insensitive auto" (Some Auto)
    (tile_choice_of_string "  AuTo ");
  tc "positive int" (Some (Fixed 7)) (tile_choice_of_string "7");
  tc "trimmed int" (Some (Fixed 128)) (tile_choice_of_string " 128 ");
  tc "zero rejected" None (tile_choice_of_string "0");
  tc "negative rejected" None (tile_choice_of_string "-3");
  tc "garbage rejected" None (tile_choice_of_string "many");
  tc "empty rejected" None (tile_choice_of_string "");
  let bc = Alcotest.(check (option int)) in
  bc "budget int" (Some 512) (budget_mb_of_string "512");
  bc "budget trimmed" (Some 64) (budget_mb_of_string " 64 ");
  bc "budget zero rejected" None (budget_mb_of_string "0");
  bc "budget garbage rejected" None (budget_mb_of_string "big");
  (* The auto heuristic: largest slot count fitting the budget, floored
     at 1.  One slot costs nv*(8*stride+34) + 8*m bytes. *)
  let tile =
    H.Criticality.auto_tile ~budget_mb:1 ~n_vertices:1000 ~n_edges:2000
      ~stride:10 ()
  in
  Alcotest.(check int) "auto_tile 1MB" (1024 * 1024 / ((1000 * 114) + 16_000))
    tile;
  Alcotest.(check int) "auto_tile floors at 1" 1
    (H.Criticality.auto_tile ~budget_mb:1 ~n_vertices:10_000_000
       ~n_edges:20_000_000 ~stride:100 ())

(* Tile precedence, observed through the criticality.backward_tiles
   counter: an explicit ?tile beats the set_tile override, which beats
   the auto default (whose budget covers any test-sized graph in one
   tile).  The env-variable leg of the chain is the lazy read of
   CRIT_TILE through tile_choice_of_string, pinned above. *)
let test_tile_precedence () =
  let dims = { Form.n_globals = 2; n_pcs = 4 } in
  let g, forms = Test_kernels.random_dag 7 dims in
  let no = Array.length g.Tgraph.outputs in
  Alcotest.(check bool) "graph has several outputs" true (no >= 2);
  let saved = Ssta_obs.Obs.enabled () in
  Ssta_obs.Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      H.Criticality.set_tile_auto ();
      Ssta_obs.Obs.set_enabled saved;
      Ssta_obs.Obs.reset ())
    (fun () ->
      Ssta_obs.Obs.enable ();
      let tiles_of ?tile () =
        Ssta_obs.Obs.reset ();
        ignore (H.Criticality.compute ?tile ~delta:0.05 g ~forms);
        Ssta_obs.Obs.find_counter "criticality.backward_tiles"
      in
      Alcotest.(check int) "auto default: one tile at test scale" 1
        (tiles_of ());
      H.Criticality.set_tile 1;
      Alcotest.(check int) "set_tile overrides the default" no (tiles_of ());
      Alcotest.(check int) "?tile beats set_tile" 1 (tiles_of ~tile:no ());
      H.Criticality.set_tile_auto ();
      Alcotest.(check int) "set_tile_auto restores the heuristic" 1
        (tiles_of ()))

(* Extract.output_load_increments was rewritten on Form_buf in-place
   kernels; it must reproduce the boxed Form.scale list + Form.max_list
   fold bit for bit (the list head was the LAST fanin arc, so the fold
   visits arcs in descending edge order). *)
let test_output_load_matches_boxed () =
  let nl =
    Ssta_circuit.Random_logic.make
      {
        Ssta_circuit.Random_logic.name = "load_eq";
        n_pi = 6;
        n_po = 5;
        n_gates = 60;
        seed = 9;
        locality = 0.5;
      }
  in
  let b = Build.characterize nl in
  let model = H.Extract.extract ~delta:0.05 b in
  let g = b.Build.graph in
  let fanouts = Ssta_circuit.Netlist.fanout_counts b.Build.netlist in
  let expected =
    Array.map
      (fun out ->
        let lo = g.Tgraph.fanin_lo.(out) and hi = g.Tgraph.fanin_hi.(out) in
        if hi <= lo then Form.zero b.Build.basis.Ssta_variation.Basis.dims
        else begin
          let fanout = max fanouts.(out) 1 in
          let slope = 0.12 /. (1.0 +. (0.12 *. float_of_int (fanout - 1))) in
          let arcs = ref [] in
          for e = lo to hi - 1 do
            arcs := Form.scale slope b.Build.forms.(e) :: !arcs
          done;
          Form.max_list !arcs
        end)
      g.Tgraph.outputs
  in
  Array.iteri
    (fun k want ->
      let got = model.H.Timing_model.output_load.(k) in
      if not (Test_kernels.exactly_equal want got) then
        Alcotest.failf "output load %d:@.expected %a@.actual   %a" k Form.pp
          want Form.pp got)
    expected

let qtest prop name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name QCheck.(int_range 0 100_000) prop)

let suites =
  [
    ( "crit_screen.equivalence",
      [
        qtest prop_screen_equivalence
          "cone screen = naive reference (keep/cm/counters, all modes)";
        Alcotest.test_case "tile validation and oversize" `Quick
          test_tile_validation;
        Alcotest.test_case "tile knob parsers (CRIT_TILE / budget)" `Quick
          test_tile_parsers;
        Alcotest.test_case "tile precedence: ?tile > set_tile > auto" `Quick
          test_tile_precedence;
      ] );
    ( "crit_screen.output_load",
      [
        Alcotest.test_case "Form_buf fold = boxed Form fold (bit-exact)"
          `Quick test_output_load_matches_boxed;
      ] );
  ]
