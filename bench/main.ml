(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section VI), plus the ablations called out in DESIGN.md, a
   Bechamel micro-benchmark suite for the runtime backbone, and the kernel
   benchmarks tracking the allocation-free propagation path.

   Usage:
     dune exec bench/main.exe                 # everything, default budgets
     dune exec bench/main.exe table1          # Table I only
     dune exec bench/main.exe fig6 fig7       # selected experiments
     MC_ITERS=10000 dune exec bench/main.exe  # paper-scale Monte Carlo
     BENCH_JSON=out.json dune exec bench/main.exe kernels criticality_c1908
                                              # machine-readable results

   Monte Carlo iteration counts default to a single-core-friendly budget;
   the paper used 10,000 iterations (see EXPERIMENTS.md).  BENCH_REPS
   scales the repetition count of the kernel timing loops (for smoke
   runs); BENCH_JSON=path writes every recorded headline metric as a flat
   JSON object on exit. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Build = Ssta_timing.Build
module Stats = Ssta_gauss.Stats
module Iscas = Ssta_circuit.Iscas
module N = Ssta_circuit.Netlist
module Obs = Ssta_obs.Obs
module Batch = Ssta_batch.Batch

let mc_iters =
  match Sys.getenv_opt "MC_ITERS" with
  | Some s -> (try int_of_string s with _ -> 1000)
  | None -> 1000

let bench_reps =
  match Sys.getenv_opt "BENCH_REPS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 200)
  | None -> 200

let delta = 0.05

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Machine-readable results: experiments record their headline numbers
   here; with BENCH_JSON=path the accumulated metrics are written as one
   flat JSON object when the run completes. *)
let metrics : (string * float) list ref = ref []
let record key value = metrics := (key, value) :: !metrics

(* The core count contextualizes every parallel-scaling number and drives
   the regression gate's speedup mode (informational below 4 cores,
   enforcing at 4 and up).  Several experiments record it; only the first
   wins so the JSON object keeps unique keys. *)
let record_cores () =
  if not (List.mem_assoc "par_available_cores" !metrics) then
    record "par_available_cores"
      (float_of_int (Domain.recommended_domain_count ()))

let write_metrics path =
  let oc = open_out path in
  output_string oc "{\n";
  let rec go = function
    | [] -> ()
    | (k, v) :: rest ->
        (* %.17g round-trips doubles but prints inf/nan, which JSON
           rejects; clamp those to null. *)
        if Float.is_finite v then
          Printf.fprintf oc "  %S: %.17g%s\n" k v
            (if rest = [] then "" else ",")
        else
          Printf.fprintf oc "  %S: null%s\n" k (if rest = [] then "" else ",");
        go rest
  in
  go (List.rev !metrics);
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\nwrote %d metrics to %s\n" (List.length !metrics) path

(* Mean wall-clock seconds and allocated bytes per call of [f].  The
   elapsed time is clamped to one timer tick: with BENCH_REPS=1 a call can
   complete inside the gettimeofday resolution and the raw difference comes
   back 0.0, which would turn every derived ratio into inf/nan and poison
   the JSON the regression gate parses. *)
let time_alloc reps f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  let a1 = Gc.allocated_bytes () in
  (Float.max (t1 -. t0) 1e-9 /. float_of_int reps,
   (a1 -. a0) /. float_of_int reps)

(* Zero-variance-safe ratio for headline speedup numbers. *)
let ratio a b = a /. Float.max b 1e-12

(* ------------------------------------------------------------------ *)
(* Table I: results of timing model extraction                         *)
(* ------------------------------------------------------------------ *)

let table1_row name =
  let nl = Iscas.build name in
  let b = Build.characterize nl in
  let model = H.Extract.extract ~delta b in
  let stats = model.H.Timing_model.stats in
  let io = H.Timing_model.io_delays model in
  let mc =
    Ssta_mc.Allpairs_mc.run ~iterations:mc_iters ~seed:42
      (Ssta_mc.Sampler.ctx_of_build b)
  in
  let merr = ref 0.0 and verr = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j f ->
          match f with
          | Some f when mc.Ssta_mc.Allpairs_mc.reachable.(i).(j) ->
              let mm = mc.Ssta_mc.Allpairs_mc.means.(i).(j) in
              let ms = mc.Ssta_mc.Allpairs_mc.stds.(i).(j) in
              (* A zero MC moment (e.g. a zero-delay feedthrough pair)
                 would turn the relative error into inf/nan; such pairs
                 carry no timing information, so they are skipped rather
                 than allowed to poison the max. *)
              if mm <> 0.0 then
                merr := Float.max !merr (abs_float (f.Form.mean -. mm) /. mm);
              if ms <> 0.0 then
                verr := Float.max !verr (abs_float (Form.std f -. ms) /. ms)
          | _ -> ())
        row)
    io;
  let pe, pv = H.Timing_model.compression model in
  let paper = Iscas.paper_row name in
  Printf.printf
    "%-6s %5d %5d %5d %5d  %4.0f%% %4.0f%%  %5.2f%% %5.2f%%  %7.2f  | %5d %5d\n"
    name stats.H.Timing_model.original_edges
    stats.H.Timing_model.original_vertices stats.H.Timing_model.model_edges
    stats.H.Timing_model.model_vertices (100.0 *. pe) (100.0 *. pv)
    (100.0 *. !merr) (100.0 *. !verr)
    stats.H.Timing_model.extraction_seconds paper.Iscas.eo paper.Iscas.vo;
  record (Printf.sprintf "table1_%s_merr" name) !merr;
  record (Printf.sprintf "table1_%s_verr" name) !verr;
  record
    (Printf.sprintf "table1_%s_extract_s" name)
    stats.H.Timing_model.extraction_seconds;
  (pe, pv, !merr, !verr)

let run_table1 () =
  header
    (Printf.sprintf
       "Table I: timing model extraction (delta=%.2f, MC=%d iterations)"
       delta mc_iters);
  Printf.printf
    "%-6s %5s %5s %5s %5s  %5s %5s  %6s %6s  %7s  | %s\n" "name" "Eo" "Vo"
    "Em" "Vm" "pe" "pv" "merr" "verr" "T(s)" "paper Eo/Vo";
  let acc = ref (0.0, 0.0, 0.0, 0.0) in
  let n = Array.length Iscas.names in
  Array.iter
    (fun name ->
      let pe, pv, me, ve = table1_row name in
      let a, b, c, d = !acc in
      acc := (a +. pe, b +. pv, c +. me, d +. ve))
    Iscas.names;
  let a, b, c, d = !acc in
  let fn = float_of_int n in
  Printf.printf
    "%-6s %29s  %4.0f%% %4.0f%%  %5.2f%% %5.2f%%   (paper: 20%% 19%% 0.59%% 1.06%%)\n"
    "avg" "" (100.0 *. a /. fn) (100.0 *. b /. fn) (100.0 *. c /. fn)
    (100.0 *. d /. fn)

(* ------------------------------------------------------------------ *)
(* Fig. 6: criticality histogram for c7552                             *)
(* ------------------------------------------------------------------ *)

let run_fig6 () =
  header "Fig. 6: edge criticality histogram (c7552, 20 bins)";
  let b = Build.characterize (Iscas.build "c7552") in
  let _, crit =
    H.Extract.extract_with_criticality ~exact:true ~delta b
  in
  let cm = crit.H.Criticality.cm in
  let hist = Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:20 cm in
  let total = Array.fold_left ( + ) 0 hist in
  Printf.printf "criticality bin     count  histogram\n";
  Array.iteri
    (fun i c ->
      let lo = float_of_int i /. 20.0 and hi = float_of_int (i + 1) /. 20.0 in
      Printf.printf "[%4.2f, %4.2f%c  %7d  %s\n" lo hi
        (if i = 19 then ']' else ')')
        c
        (String.make (max 0 (c * 60 / max 1 total)) '#'))
    hist;
  Printf.printf
    "edges=%d; extreme bins hold %.0f%% of mass (paper: strongly bimodal)\n"
    total
    (100.0 *. float_of_int (hist.(0) + hist.(19)) /. float_of_int total)

(* ------------------------------------------------------------------ *)
(* Fig. 7: hierarchical timing analysis of 4 x c6288                   *)
(* ------------------------------------------------------------------ *)

let run_fig7 () =
  header
    (Printf.sprintf "Fig. 7: hierarchical SSTA, 2x2 c6288 (MC=%d iterations)"
       mc_iters);
  let nl = Iscas.build "c6288" in
  let b = Build.characterize nl in
  let t0 = Unix.gettimeofday () in
  let model = H.Extract.extract ~delta b in
  Printf.printf "model extraction: %.2fs (%d -> %d edges)\n"
    (Unix.gettimeofday () -. t0)
    model.H.Timing_model.stats.H.Timing_model.original_edges
    model.H.Timing_model.stats.H.Timing_model.model_edges;
  let fp = H.Floorplan.mult_grid ~label:"c6288" ~build:b ~model () in
  let dg = H.Design_grid.build fp in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:mc_iters ~seed:7 ctx in
  let delays = mc.Ssta_mc.Flat_mc.delays in
  let mc_mean = Stats.mean delays and mc_std = Stats.std delays in
  let d = rep.H.Hier_analysis.delay and g = glo.H.Hier_analysis.delay in
  Printf.printf "Monte Carlo (flattened):  mean=%8.1f  std=%7.1f  (%.2fs)\n"
    mc_mean mc_std mc.Ssta_mc.Flat_mc.wall_seconds;
  Printf.printf
    "proposed method:          mean=%8.1f  std=%7.1f  (%.4fs propagation + \
     %.4fs one-time setup)\n"
    d.Form.mean (Form.std d) rep.H.Hier_analysis.propagate_seconds
    rep.H.Hier_analysis.setup_seconds;
  Printf.printf "global correlation only:  mean=%8.1f  std=%7.1f\n"
    g.Form.mean (Form.std g);
  (* CDF series over normalized delay, like the paper's plot. *)
  let lo = Stats.quantile delays 0.0005 and hi = Stats.quantile delays 0.9995 in
  let span = hi -. lo in
  let lo = lo -. (0.05 *. span) and hi = hi +. (0.05 *. span) in
  Printf.printf
    "\nnormalized delay |  MC    proposed  global-only   (CDF series)\n";
  let points = 21 in
  for i = 0 to points - 1 do
    let x =
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))
    in
    let xn = (x -. lo) /. (hi -. lo) in
    Printf.printf "      %4.2f       | %5.3f   %5.3f     %5.3f\n" xn
      (H.Yield.empirical delays ~clock:x)
      (Form.cdf d x) (Form.cdf g x)
  done;
  (* The paper's speedup claim: hierarchical propagation vs flattened MC at
     10,000 iterations (scale measured cost if fewer iterations were run). *)
  let mc10k =
    mc.Ssta_mc.Flat_mc.wall_seconds *. (10000.0 /. float_of_int mc_iters)
  in
  Printf.printf
    "\nspeedup vs MC at 10k iters (%s, %.1fs): %.0fx per analysis \
     (propagation), %.0fx including one-time setup\n"
    (if mc_iters >= 10000 then "measured" else "extrapolated")
    mc10k
    (mc10k /. rep.H.Hier_analysis.propagate_seconds)
    (mc10k /. rep.H.Hier_analysis.wall_seconds);
  Printf.printf
    "ks distance MC vs proposed:     %.4f\nks distance MC vs global-only:  %.4f\n"
    (Stats.ks_distance delays (Form.cdf d))
    (Stats.ks_distance delays (Form.cdf g))

(* ------------------------------------------------------------------ *)
(* Ablation: criticality threshold delta (model size vs accuracy)      *)
(* ------------------------------------------------------------------ *)

let run_ablation_delta () =
  header "Ablation: delta sweep on c1908 (size vs accuracy tradeoff)";
  let b = Build.characterize (Iscas.build "c1908") in
  let g = b.Build.graph in
  (* Reference: full-graph SSTA IO delays, one exclusive forward sweep per
     input through a single reused workspace (the same kernel path the
     extraction itself runs on). *)
  let reference =
    let forms = b.Build.forms in
    let dims =
      if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
      else Form.dims forms.(0)
    in
    let fbuf = Form_buf.of_forms dims forms in
    let ws = H.Propagate.create_workspace () in
    let source1 = [| 0 |] in
    Array.map
      (fun input ->
        source1.(0) <- input;
        H.Propagate.forward_into ws g ~forms:fbuf ~sources:source1;
        Array.map (fun out -> H.Propagate.ws_form ws out)
          g.Ssta_timing.Tgraph.outputs)
      g.Ssta_timing.Tgraph.inputs
  in
  Printf.printf "%-8s %5s %5s %5s %5s  %8s %8s  %6s\n" "delta" "Em" "Vm" "pe%"
    "pv%" "merr%" "verr%" "T(s)";
  List.iter
    (fun d ->
      let model = H.Extract.extract ~delta:d b in
      let io = H.Timing_model.io_delays model in
      let merr = ref 0.0 and verr = ref 0.0 in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j f ->
              match (f, reference.(i).(j)) with
              | Some f, Some r ->
                  let rs = Form.std r in
                  if r.Form.mean <> 0.0 then
                    merr :=
                      Float.max !merr
                        (abs_float (f.Form.mean -. r.Form.mean)
                        /. r.Form.mean);
                  if rs <> 0.0 then
                    verr :=
                      Float.max !verr (abs_float (Form.std f -. rs) /. rs)
              | _ -> ())
            row)
        io;
      let pe, pv = H.Timing_model.compression model in
      let s = model.H.Timing_model.stats in
      Printf.printf "%-8g %5d %5d %5.0f %5.0f  %8.3f %8.3f  %6.2f\n" d
        s.H.Timing_model.model_edges s.H.Timing_model.model_vertices
        (100. *. pe) (100. *. pv) (100. *. !merr) (100. *. !verr)
        s.H.Timing_model.extraction_seconds)
    [ 0.3; 0.1; 0.05; 0.01; 0.001 ]

(* ------------------------------------------------------------------ *)
(* Ablation: grid granularity at design level                          *)
(* ------------------------------------------------------------------ *)

let run_ablation_grid () =
  header "Ablation: grid granularity (cells/grid) on a 2x2 8-bit multiplier";
  Printf.printf "%-12s %6s %6s  %10s %10s  %10s\n" "cells/grid" "tiles"
    "dim" "hier mean" "hier std" "mc std";
  List.iter
    (fun budget ->
      let nl = Ssta_circuit.Multiplier.make ~bits:8 () in
      let b = Build.characterize ~cells_per_tile:budget nl in
      let model = H.Extract.extract ~delta b in
      let fp = H.Floorplan.mult_grid ~label:"m8" ~build:b ~model () in
      let dg = H.Design_grid.build fp in
      let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
      let ctx = H.Hier_analysis.flatten fp dg in
      let mc =
        Ssta_mc.Flat_mc.run ~iterations:(max 500 (mc_iters / 2)) ~seed:3 ctx
      in
      let d = rep.H.Hier_analysis.delay in
      Printf.printf "%-12d %6d %6d  %10.1f %10.2f  %10.2f\n" budget
        (Array.length dg.H.Design_grid.tiles)
        dg.H.Design_grid.basis.Ssta_variation.Basis.dims.Form.n_pcs
        d.Form.mean (Form.std d)
        (Stats.std mc.Ssta_mc.Flat_mc.delays))
    [ 50; 100; 400 ]

(* ------------------------------------------------------------------ *)
(* Convergence: Table I accuracy columns vs MC depth                   *)
(* ------------------------------------------------------------------ *)

let run_convergence () =
  header
    "Convergence: c432 model accuracy vs Monte Carlo iterations (noise floor)";
  let b = Build.characterize (Iscas.build "c432") in
  let model = H.Extract.extract ~delta b in
  let io = H.Timing_model.io_delays model in
  Printf.printf "%-10s %8s %8s   %s\n" "MC iters" "merr%" "verr%"
    "(1/sqrt(2N) noise floor on sigma)";
  List.iter
    (fun iters ->
      let mc =
        Ssta_mc.Allpairs_mc.run ~iterations:iters ~seed:42
          (Ssta_mc.Sampler.ctx_of_build b)
      in
      let merr = ref 0.0 and verr = ref 0.0 in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j f ->
              match f with
              | Some f when mc.Ssta_mc.Allpairs_mc.reachable.(i).(j) ->
                  let mm = mc.Ssta_mc.Allpairs_mc.means.(i).(j) in
                  let ms = mc.Ssta_mc.Allpairs_mc.stds.(i).(j) in
                  if mm <> 0.0 then
                    merr :=
                      Float.max !merr (abs_float (f.Form.mean -. mm) /. mm);
                  if ms <> 0.0 then
                    verr :=
                      Float.max !verr (abs_float (Form.std f -. ms) /. ms)
              | _ -> ())
            row)
        io;
      Printf.printf "%-10d %8.2f %8.2f   %.2f%%\n" iters (100.0 *. !merr)
        (100.0 *. !verr)
        (100.0 /. sqrt (2.0 *. float_of_int iters)))
    [ 250; 1000; 4000; 10000 ]

(* ------------------------------------------------------------------ *)
(* Ablation: corner STA pessimism vs SSTA                              *)
(* ------------------------------------------------------------------ *)

let run_ablation_corners () =
  header "Ablation: corner-based STA pessimism vs SSTA (paper Section I)";
  Printf.printf "%-6s %10s %10s %10s %10s  %8s\n" "name" "nominal"
    "+3s corner" "glob corner" "ssta q99.87" "margin x";
  List.iter
    (fun name ->
      let b = Build.characterize (Iscas.build name) in
      let p = H.Corners.pessimism b in
      Printf.printf "%-6s %10.1f %10.1f %10.1f %10.1f  %8.2f\n" name
        p.H.Corners.nominal p.H.Corners.slow3 p.H.Corners.global_slow3
        p.H.Corners.ssta_q9987 p.H.Corners.margin_ratio)
    [ "c432"; "c880"; "c1908"; "c6288" ]

(* ------------------------------------------------------------------ *)
(* Kernel benchmarks: the allocation-free propagation path             *)
(* ------------------------------------------------------------------ *)

(* Pure forward sweep (boxed Form.t per vertex, fresh arrays per call)
   against the Form_buf kernel path through one reused workspace - the
   pair of numbers behind the extraction speedup.  Both run the identical
   float pipeline, so only representation and allocation differ. *)
let run_kernels () =
  header
    (Printf.sprintf "Kernels: forward sweep, pure vs flat-buffer (c432, %d reps)"
       bench_reps);
  let b = Build.characterize (Iscas.build "c432") in
  let g = b.Build.graph and forms = b.Build.forms in
  let inputs = g.Ssta_timing.Tgraph.inputs in
  let t_pure, a_pure =
    time_alloc bench_reps (fun () -> ignore (H.Propagate.forward_all g ~forms))
  in
  let dims =
    if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
    else Form.dims forms.(0)
  in
  let fbuf = Form_buf.of_forms dims forms in
  let ws = H.Propagate.create_workspace () in
  let t_kern, a_kern =
    time_alloc bench_reps (fun () ->
        H.Propagate.forward_into ws g ~forms:fbuf ~sources:inputs)
  in
  Printf.printf "%-24s %10s %14s\n" "" "us/sweep" "bytes/sweep";
  Printf.printf "%-24s %10.1f %14.0f\n" "forward_all (pure)" (1e6 *. t_pure)
    a_pure;
  Printf.printf "%-24s %10.1f %14.0f\n" "forward_into (kernel)"
    (1e6 *. t_kern) a_kern;
  Printf.printf "speedup: %.2fx   allocation: %.0fx less\n"
    (ratio t_pure t_kern)
    (a_pure /. Float.max 1.0 a_kern);
  record "kernels_forward_c432_pure_us" (1e6 *. t_pure);
  record "kernels_forward_c432_pure_bytes" a_pure;
  record "kernels_forward_c432_kernel_us" (1e6 *. t_kern);
  record "kernels_forward_c432_kernel_bytes" a_kern;
  record "kernels_forward_c432_speedup" (ratio t_pure t_kern);
  record "kernels_forward_c432_alloc_ratio" (a_pure /. Float.max 1.0 a_kern)

(* ------------------------------------------------------------------ *)
(* Criticality benchmark: full c1908 screen at the default delta       *)
(* ------------------------------------------------------------------ *)

let run_criticality_c1908 () =
  header "Criticality: c1908 exhaustive pair screen (delta=0.05)";
  let b = Build.characterize (Iscas.build "c1908") in
  (* Best-of-3 wall clock: a single-shot measurement swings well past the
     regression gate's tolerance with machine load, while the minimum is a
     stable statistic.  Allocation is deterministic, so one run suffices. *)
  let dt = ref infinity and result = ref None and da = ref 0.0 in
  for rep = 1 to 3 do
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let cr = H.Criticality.compute ~delta b.Build.graph ~forms:b.Build.forms in
    let t = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    if rep = 1 then begin
      result := Some cr;
      da := Gc.allocated_bytes () -. a0
    end;
    if t < !dt then dt := t
  done;
  let cr = Option.get !result in
  let dt = !dt and da = !da in
  let per_screen = da /. float_of_int (max 1 cr.H.Criticality.screened_pairs) in
  Printf.printf
    "%.3f s, screened=%d exact=%d, %.1f MB allocated (%.1f bytes/screen)\n" dt
    cr.H.Criticality.screened_pairs cr.H.Criticality.exact_evals (da /. 1e6)
    per_screen;
  record "criticality_c1908_s" dt;
  record "criticality_c1908_screened" (float_of_int cr.H.Criticality.screened_pairs);
  record "criticality_c1908_exact" (float_of_int cr.H.Criticality.exact_evals);
  record "criticality_c1908_bytes" da;
  record "criticality_c1908_bytes_per_screen" per_screen

(* ------------------------------------------------------------------ *)
(* Criticality screen breakdown: cone-indexed visits, phases, tiling   *)
(* ------------------------------------------------------------------ *)

(* The cone-indexed screen's own dashboard (c1908 at the default delta):
   per-phase span seconds (backward sweeps vs pair screening), the visit
   counters (screened = scalar-screen disposals, exact = full
   evaluations, cone = active cone entries built, compacted = settled
   entries dropped by compaction, tiles = backward storage tiles), and a
   tile-sweep assertion that bounding the backward storage changes no
   result bits.  The counters are deterministic for a pinned code path
   and gated exactly (see check_regression.ml's Count class). *)
let run_criticality_screen () =
  header "Criticality screen: cone-indexed breakdown (c1908, delta=0.05)";
  let b = Build.characterize (Iscas.build "c1908") in
  let g = b.Build.graph and forms = b.Build.forms in
  let saved = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  let t0 = Unix.gettimeofday () in
  let cr = H.Criticality.compute ~delta g ~forms in
  let dt = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let backward_s = Obs.span_seconds "criticality.backward" in
  let screen_s = Obs.span_seconds "criticality.screen" in
  let counter = Obs.find_counter in
  let cone = counter "criticality.cone_edges" in
  let compacted = counter "criticality.compacted_edges" in
  let tiles = counter "criticality.backward_tiles" in
  (* Blocked backward accounting: sweeps still count one per output, and
     blocks count the multi-output passes they were amortized into - the
     sweeps/blocks ratio is the edge-table traversal amortization. *)
  let bwd_sweeps = counter "propagate.backward_sweeps" in
  let bwd_blocks = counter "propagate.backward_blocks" in
  Obs.set_enabled saved;
  Printf.printf
    "%.3f s total (%.3f s backward, %.3f s screen)\n\
     screened=%d exact=%d cone=%d compacted=%d tiles=%d sweeps=%d blocks=%d\n"
    dt backward_s screen_s cr.H.Criticality.screened_pairs
    cr.H.Criticality.exact_evals cone compacted tiles bwd_sweeps bwd_blocks;
  (* Tiled backward storage must be invisible in the results: same keep
     set, bit-identical criticalities, same visit counters. *)
  let tiled = H.Criticality.compute ~tile:8 ~delta g ~forms in
  let equal =
    tiled.H.Criticality.keep = cr.H.Criticality.keep
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         tiled.H.Criticality.cm cr.H.Criticality.cm
    && tiled.H.Criticality.exact_evals = cr.H.Criticality.exact_evals
    && tiled.H.Criticality.screened_pairs = cr.H.Criticality.screened_pairs
  in
  if not equal then
    failwith "criticality_screen: tile=8 diverged from the untiled screen";
  Printf.printf "tile=8 bit-equal: yes\n";
  record "crit_screen_c1908_s" dt;
  record "crit_screen_c1908_backward_s" backward_s;
  record "crit_screen_c1908_screen_s" screen_s;
  record "crit_screen_c1908_screened_pairs"
    (float_of_int cr.H.Criticality.screened_pairs);
  record "crit_screen_c1908_exact_evals"
    (float_of_int cr.H.Criticality.exact_evals);
  record "crit_screen_c1908_cone_edges" (float_of_int cone);
  record "crit_screen_c1908_compacted_edges" (float_of_int compacted);
  record "crit_screen_c1908_backward_tiles" (float_of_int tiles);
  record "crit_screen_c1908_backward_sweeps" (float_of_int bwd_sweeps);
  record "crit_screen_c1908_backward_blocks" (float_of_int bwd_blocks)

(* ------------------------------------------------------------------ *)
(* Extraction benchmark: c7552, the largest ISCAS-85 circuit           *)
(* ------------------------------------------------------------------ *)

let run_extract_c7552 () =
  header "Extraction: c7552 end-to-end timing model (delta=0.05)";
  let b = Build.characterize (Iscas.build "c7552") in
  (* The extraction runs with observability enabled: the per-phase spans
     (extract.criticality / reduce / freeze / output_load) become the
     BENCH_JSON phase breakdown.  Span overhead is a handful of coarse
     events, far below the gate's timing tolerance. *)
  let saved = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let model = H.Extract.extract ~delta b in
  let dt = Unix.gettimeofday () -. t0 in
  let da = Gc.allocated_bytes () -. a0 in
  Obs.set_enabled saved;
  let stats = model.H.Timing_model.stats in
  Printf.printf "%.2f s, %.3f GB allocated (%d -> %d edges)\n" dt (da /. 1e9)
    stats.H.Timing_model.original_edges stats.H.Timing_model.model_edges;
  let phases = [ "criticality"; "reduce"; "freeze"; "output_load" ] in
  List.iter
    (fun phase ->
      let s = Obs.span_seconds ("extract." ^ phase) in
      Printf.printf "  phase %-12s %7.3f s (%4.1f%%)\n" phase s
        (100.0 *. s /. Float.max dt 1e-9);
      record (Printf.sprintf "extract_c7552_phase_%s_s" phase) s)
    phases;
  record "extract_c7552_s" dt;
  record "extract_c7552_bytes" da;
  record "extract_c7552_model_edges" (float_of_int stats.H.Timing_model.model_edges)

(* ------------------------------------------------------------------ *)
(* Observability overhead: instrumented-but-disabled vs a raw replica  *)
(* ------------------------------------------------------------------ *)

(* The regression gate's disabled-mode guarantee: a forward sweep through
   the instrumented [Propagate.forward_into] with observability off must
   cost within GATE_OVERHEAD_MAX (default 2%) of an uninstrumented replica
   of the same kernel loop.  The replica below is a line-for-line copy of
   the sweep with every Obs touch point deleted - same Form_buf kernels,
   same reachability-mask discipline - so the measured difference is
   exactly the instrumentation's disabled-mode residue (one flag load per
   sweep).  Raw/disabled/enabled are timed in adjacent slices within each
   round, and the gated fraction is the median of the per-round
   disabled/raw ratios: pairing inside a round cancels CPU frequency
   drift between rounds, which dwarfs the effect being measured. *)
let run_obs_overhead () =
  header
    "Observability: disabled-mode overhead on the c432 forward sweep \
     (median of 9 call-interleaved rounds)";
  let b = Build.characterize (Iscas.build "c432") in
  let g = b.Build.graph and forms = b.Build.forms in
  let inputs = g.Ssta_timing.Tgraph.inputs in
  let dims =
    if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
    else Form.dims forms.(0)
  in
  let fbuf = Form_buf.of_forms dims forms in
  let n = Ssta_timing.Tgraph.n_vertices g in
  let rbuf = Form_buf.create dims n in
  let reach = Bytes.make n '\000' in
  let raw_sweep () =
    Bytes.fill reach 0 n '\000';
    Array.iter
      (fun v ->
        Form_buf.clear_slot rbuf v;
        Bytes.unsafe_set reach v '\001')
      inputs;
    let src = g.Ssta_timing.Tgraph.src and dst = g.Ssta_timing.Tgraph.dst in
    for i = 0 to Array.length src - 1 do
      let s = Array.unsafe_get src i in
      if Bytes.unsafe_get reach s <> '\000' then begin
        let d = Array.unsafe_get dst i in
        if Bytes.unsafe_get reach d <> '\000' then
          Form_buf.add_then_max_into ~acc:rbuf ~iacc:d ~a:rbuf ~ia:s ~b:fbuf
            ~ib:i
        else begin
          Form_buf.add_into ~a:rbuf ~ia:s ~b:fbuf ~ib:i ~dst:rbuf ~idst:d;
          Bytes.unsafe_set reach d '\001'
        end
      end
    done
  in
  let ws = H.Propagate.create_workspace () in
  let inst_sweep () =
    H.Propagate.forward_into ws g ~forms:fbuf ~sources:inputs
  in
  let inner = max (bench_reps * 5) 400 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      f ()
    done;
    Float.max (Unix.gettimeofday () -. t0) 1e-9 /. float_of_int inner
  in
  let saved = Obs.enabled () in
  (* Warm-up: fault in code paths and size the reused workspace. *)
  Obs.set_enabled false;
  raw_sweep ();
  inst_sweep ();
  let rounds = 9 in
  let ratios = Array.make rounds 0.0 in
  let t_raw = ref infinity
  and t_disabled = ref infinity
  and t_enabled = ref infinity in
  for r = 0 to rounds - 1 do
    (* Alternate the two sweeps at single-sweep granularity so CPU
       frequency shifts mid-round hit both sides equally; timing them in
       adjacent slices is fooled by throttling that oscillates at the
       slice period. *)
    Obs.set_enabled false;
    let tr = ref 0.0 and td = ref 0.0 in
    for i = 1 to inner do
      (* Alternate which sweep goes first so the second-runner cache and
         branch-predictor bias (several percent on this kernel) cancels
         within every round. *)
      let raw_first = i land 1 = 0 in
      let f, g =
        if raw_first then (raw_sweep, inst_sweep)
        else (inst_sweep, raw_sweep)
      in
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      g ();
      let t2 = Unix.gettimeofday () in
      let a = t1 -. t0 and b = t2 -. t1 in
      if raw_first then begin
        tr := !tr +. a;
        td := !td +. b
      end
      else begin
        tr := !tr +. b;
        td := !td +. a
      end
    done;
    let fi = float_of_int inner in
    let raw = Float.max (!tr /. fi) 1e-9 in
    let disabled = Float.max (!td /. fi) 1e-9 in
    Obs.set_enabled true;
    let enabled = timed inst_sweep in
    ratios.(r) <- disabled /. raw;
    t_raw := Float.min !t_raw raw;
    t_disabled := Float.min !t_disabled disabled;
    t_enabled := Float.min !t_enabled enabled
  done;
  Obs.set_enabled saved;
  Array.sort compare ratios;
  let frac = ratios.(rounds / 2) -. 1.0 in
  Printf.printf "%-28s %10.2f us/sweep\n" "raw replica" (1e6 *. !t_raw);
  Printf.printf "%-28s %10.2f us/sweep (%+.2f%%)\n" "instrumented, disabled"
    (1e6 *. !t_disabled) (100.0 *. frac);
  Printf.printf "%-28s %10.2f us/sweep (%+.2f%%)\n" "instrumented, enabled"
    (1e6 *. !t_enabled)
    (100.0 *. (!t_enabled -. !t_raw) /. !t_raw);
  (* Only the paired ratio is recorded: the absolute sweep time is already
     gated via kernels_forward_c432_kernel_us, and on a machine with
     frequency drift the ratio is the only stable statistic here. *)
  record "obs_disabled_overhead_frac" frac

(* ------------------------------------------------------------------ *)
(* Robustness: clean-path overhead of the degenerate-operand guard     *)
(* ------------------------------------------------------------------ *)

(* The graceful-degradation layer's only hot-path cost is the operand
   guard at the top of [Normal.clark_max_into] (two compares, four adds,
   one self-subtraction per max).  The replica below is a line-for-line
   copy of the fast kernel with the guard deleted; guarded and raw run in
   short back-to-back slices and the gated fraction is the median paired
   ratio at max2-sweep granularity - see [run_robust_overhead]. *)
let bench_sqrt2 = sqrt 2.0
let bench_inv_sqrt_2pi = 1.0 /. sqrt (2.0 *. Ssta_gauss.Normal.pi)

let clark_raw_into s =
  let mean_a = s.(0)
  and var_a = s.(1)
  and mean_b = s.(2)
  and var_b = s.(3)
  and cov = s.(4) in
  let theta2 = var_a +. var_b -. (2.0 *. cov) in
  let scale = var_a +. var_b +. 1e-30 in
  if theta2 <= 1e-12 *. scale then
    if mean_a >= mean_b then begin
      s.(0) <- 1.0;
      s.(1) <- mean_a;
      s.(2) <- var_a
    end
    else begin
      s.(0) <- 0.0;
      s.(1) <- mean_b;
      s.(2) <- var_b
    end
  else begin
    let theta = sqrt theta2 in
    let alpha = (mean_a -. mean_b) /. theta in
    let x = -.alpha /. bench_sqrt2 in
    let z = abs_float x in
    let t = 1.0 /. (1.0 +. (0.5 *. z)) in
    let poly =
      -1.26551223
      +. t
         *. (1.00002368
            +. t
               *. (0.37409196
                  +. t
                     *. (0.09678418
                        +. t
                           *. (-0.18628806
                              +. t
                                 *. (0.27886807
                                    +. t
                                       *. (-1.13520398
                                          +. t
                                             *. (1.48851587
                                                +. t
                                                   *. (-0.82215223
                                                      +. (t *. 0.17087277)))))))))
    in
    let ans = t *. exp ((-.z *. z) +. poly) in
    let erfc_x = if x >= 0.0 then ans else 2.0 -. ans in
    let tp = 0.5 *. erfc_x in
    let ph = bench_inv_sqrt_2pi *. exp (-0.5 *. alpha *. alpha) in
    let mean = (tp *. mean_a) +. ((1.0 -. tp) *. mean_b) +. (theta *. ph) in
    let second =
      (tp *. (var_a +. (mean_a *. mean_a)))
      +. ((1.0 -. tp) *. (var_b +. (mean_b *. mean_b)))
      +. ((mean_a +. mean_b) *. theta *. ph)
    in
    let v = second -. (mean *. mean) in
    s.(0) <- tp;
    s.(1) <- mean;
    if v > 0.0 then s.(2) <- v else s.(2) <- 0.0
  end

(* Replica of the [Form_buf.max2_into] hot path on plain arrays: the
   variance/covariance dot products, the Clark max and the
   tightness-blend loop over [nc] sensitivities, parameterized by the
   Clark kernel so the guarded production kernel and the raw replica run
   byte-identical surrounding code.  This is the granularity at which the
   guard is actually paid in propagation - every Clark max in the engine
   sits between these dot products and blends. *)
let bench_max2_sweep clark ~nc ~stride ~cases a b dst scratch () =
  for c = 0 to cases - 1 do
    let o = c * stride in
    let va = ref 0.0 and vb = ref 0.0 and cov = ref 0.0 in
    for k = 1 to nc do
      let xa = Array.unsafe_get a (o + k) and xb = Array.unsafe_get b (o + k) in
      va := !va +. (xa *. xa);
      vb := !vb +. (xb *. xb);
      cov := !cov +. (xa *. xb)
    done;
    let ra = Array.unsafe_get a (o + stride - 1)
    and rb = Array.unsafe_get b (o + stride - 1) in
    scratch.(0) <- Array.unsafe_get a o;
    scratch.(1) <- !va +. (ra *. ra);
    scratch.(2) <- Array.unsafe_get b o;
    scratch.(3) <- !vb +. (rb *. rb);
    scratch.(4) <- !cov;
    clark scratch;
    let tp = scratch.(0) and mean = scratch.(1) and target_var = scratch.(2) in
    let s = 1.0 -. tp in
    let s_lv = ref 0.0 in
    for k = 1 to nc do
      let v =
        (tp *. Array.unsafe_get a (o + k)) +. (s *. Array.unsafe_get b (o + k))
      in
      Array.unsafe_set dst (o + k) v;
      s_lv := !s_lv +. (v *. v)
    done;
    let resid = target_var -. !s_lv in
    Array.unsafe_set dst o mean;
    Array.unsafe_set dst
      (o + stride - 1)
      (if resid > 0.0 then sqrt resid else 0.0)
  done

let run_robust_overhead () =
  header
    "Robustness: clean-path overhead of the Clark operand guard (median of \
     paired ~1 ms slices)";
  let cases = 1024 in
  let rng = Ssta_gauss.Rng.create ~seed:17 in
  (* Representative operand mix: distinct means/variances, correlated and
     anti-correlated pairs, a sprinkle of near-ties (the branchy case). *)
  let pristine =
    Array.init (5 * cases) (fun i ->
        match i mod 5 with
        | 0 -> 10.0 *. Ssta_gauss.Rng.uniform rng
        | 1 -> 1.0 +. Ssta_gauss.Rng.uniform rng
        | 2 -> 10.0 *. Ssta_gauss.Rng.uniform rng
        | 3 -> 1.0 +. Ssta_gauss.Rng.uniform rng
        | _ -> Ssta_gauss.Rng.uniform rng -. 0.5)
  in
  let scratch = Array.make 5 0.0 in
  let sweep kernel () =
    for c = 0 to cases - 1 do
      Array.blit pristine (5 * c) scratch 0 5;
      kernel scratch
    done
  in
  let raw_sweep = sweep clark_raw_into in
  let guarded_sweep = sweep Ssta_gauss.Normal.clark_max_into in
  (* Propagation-granularity sweep: 24 sensitivities per form, the scale
     of an ISCAS characterization (global + spatial principal
     components).  Forms carry unit-order coefficients so tp stays in the
     branchy interior of (0, 1). *)
  let nc = 24 in
  let stride = nc + 2 in
  let mk_form_array () =
    Array.init (stride * cases) (fun i ->
        match i mod stride with
        | 0 -> 10.0 *. Ssta_gauss.Rng.uniform rng
        | k when k = stride - 1 -> 0.2 +. (0.3 *. Ssta_gauss.Rng.uniform rng)
        | _ -> 0.4 *. (Ssta_gauss.Rng.uniform rng -. 0.5))
  in
  let fa = mk_form_array () and fb = mk_form_array () in
  let fdst = Array.make (stride * cases) 0.0 in
  let raw_max2 =
    bench_max2_sweep clark_raw_into ~nc ~stride ~cases fa fb fdst scratch
  in
  let guarded_max2 =
    bench_max2_sweep Ssta_gauss.Normal.clark_max_into ~nc ~stride ~cases fa fb
      fdst scratch
  in
  let timed inner f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      f ()
    done;
    Float.max (Unix.gettimeofday () -. t0) 1e-9 /. float_of_int inner
  in
  (* Each ~1 ms round times the two kernels back to back and keeps their
     ratio: load and frequency drift slower than a couple of milliseconds
     inflates both halves of a pair together and cancels in the ratio,
     while spikes that land inside a single slice are killed by taking the
     median over all rounds.  Alternating the in-pair order removes any
     residual second-runner bias.  The per-kernel minima are reported as
     the absolute quiet-window speeds.  The round count scales with
     bench_reps so BENCH_REPS=20 CI runs still take ~100 samples. *)
  let paired_ratio f g =
    f ();
    g ();
    let sweep_s = timed 3 f in
    let inner = max 1 (int_of_float (1e-3 /. sweep_s)) in
    let rounds = 5 * max bench_reps 20 in
    let ratios = Array.make rounds 0.0 in
    let tf = ref infinity and tg = ref infinity in
    for r = 0 to rounds - 1 do
      let a, b =
        if r land 1 = 0 then
          let a = timed inner f in
          (a, timed inner g)
        else
          let b = timed inner g in
          (timed inner f, b)
      in
      ratios.(r) <- b /. a;
      tf := Float.min !tf a;
      tg := Float.min !tg b
    done;
    Array.sort compare ratios;
    (!tf, !tg, ratios.(rounds / 2) -. 1.0)
  in
  let t_raw, t_guarded, kernel_frac = paired_ratio raw_sweep guarded_sweep in
  Printf.printf "%-28s %10.2f us/%d maxes\n" "bare kernel, raw" (1e6 *. t_raw)
    cases;
  Printf.printf "%-28s %10.2f us/%d maxes (%+.2f%%, informational)\n"
    "bare kernel, guarded" (1e6 *. t_guarded) cases (100.0 *. kernel_frac);
  let t_raw2, t_guarded2, frac = paired_ratio raw_max2 guarded_max2 in
  Printf.printf "%-28s %10.2f us/%d maxes\n" "max2 sweep, raw" (1e6 *. t_raw2)
    cases;
  Printf.printf "%-28s %10.2f us/%d maxes (%+.2f%%, gated)\n"
    "max2 sweep, guarded" (1e6 *. t_guarded2) cases (100.0 *. frac);
  (* The gated fraction is the propagation-granularity one: the guard is
     only ever paid inside a max2/add-then-max kernel, between the
     covariance dot products and the sensitivity blend, so that ratio -
     not the bare-kernel microscope above - is the clean-path overhead the
     engine actually adds. *)
  record "robust_disabled_overhead_frac" frac

(* ------------------------------------------------------------------ *)
(* Parallel scaling: chunked MC over 1/2/4/8 domains                   *)
(* ------------------------------------------------------------------ *)

let par_domain_counts = [ 1; 2; 4; 8 ]

let bits_of_floats a = Array.map Int64.bits_of_float a

(* Flat Monte Carlo over a domain sweep: the chunk layout (and every RNG
   substream) is fixed by the iteration count, so every domain count must
   reproduce the single-domain delays bit for bit - asserted here, not just
   recorded. *)
let run_mc_par () =
  let iters = max 4096 mc_iters in
  header
    (Printf.sprintf "Parallel MC scaling (c880, %d samples, chunk=%d)" iters
       Ssta_mc.Sampler.chunk_iterations);
  record_cores ();
  let b = Build.characterize (Iscas.build "c880") in
  let ctx = Ssta_mc.Sampler.ctx_of_build b in
  Printf.printf "%-8s %10s %9s  %s\n" "domains" "wall s" "speedup" "bit-equal";
  let base = ref None in
  List.iter
    (fun d ->
      let r = Ssta_mc.Flat_mc.run ~domains:d ~iterations:iters ~seed:42 ctx in
      let t = r.Ssta_mc.Flat_mc.wall_seconds in
      let reference =
        match !base with
        | None ->
            base := Some (t, bits_of_floats r.Ssta_mc.Flat_mc.delays);
            (t, bits_of_floats r.Ssta_mc.Flat_mc.delays)
        | Some b -> b
      in
      let t1, golden = reference in
      let equal = golden = bits_of_floats r.Ssta_mc.Flat_mc.delays in
      if not equal then
        failwith
          (Printf.sprintf "mc_par: domains=%d diverged from domains=1" d);
      Printf.printf "%-8d %10.3f %8.2fx  %s\n" d t (ratio t1 t) "yes";
      record (Printf.sprintf "mc_par_c880_d%d_s" d) t;
      record (Printf.sprintf "mc_par_c880_d%d_speedup" d) (ratio t1 t))
    par_domain_counts

(* ------------------------------------------------------------------ *)
(* Parallel scaling: c7552 extraction over 1/2/4/8 domains             *)
(* ------------------------------------------------------------------ *)

let run_extract_par_c7552 () =
  header "Parallel extraction scaling (c7552, delta=0.05)";
  let b = Build.characterize (Iscas.build "c7552") in
  Printf.printf "%-8s %10s %9s  %s\n" "domains" "wall s" "speedup" "bit-equal";
  let base = ref None in
  List.iter
    (fun d ->
      let t0 = Unix.gettimeofday () in
      let model = H.Extract.extract ~domains:d ~delta b in
      let t = Unix.gettimeofday () -. t0 in
      let signature =
        (model.H.Timing_model.forms, model.H.Timing_model.stats.H.Timing_model.model_edges)
      in
      let t1, golden =
        match !base with
        | None ->
            base := Some (t, signature);
            (t, signature)
        | Some b -> b
      in
      let equal = golden = signature in
      if not equal then
        failwith
          (Printf.sprintf "extract_par: domains=%d diverged from domains=1" d);
      Printf.printf "%-8d %10.2f %8.2fx  %s\n" d t (ratio t1 t) "yes";
      record (Printf.sprintf "extract_par_c7552_d%d_s" d) t;
      record (Printf.sprintf "extract_par_c7552_d%d_speedup" d) (ratio t1 t))
    par_domain_counts

(* ------------------------------------------------------------------ *)
(* Batch engine: multi-scenario throughput on c7552                    *)
(* ------------------------------------------------------------------ *)

(* Best-of-N wall clock (same rationale as run_criticality_c1908: the
   minimum is the stable statistic under machine load); the last result
   is returned for the bit-identity assertions. *)
let best_wall ?(reps = 3) f =
  let dt = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    if t < !dt then dt := t;
    result := Some r
  done;
  (!dt, Option.get !result)

(* Bit-pattern signature of a batch result: float arrays may carry NaN
   (unreachable outputs), where (=) would spuriously differ. *)
let arr_bits = Array.map Int64.bits_of_float

let form_bits (f : Form.t) =
  ( Int64.bits_of_float f.Form.mean,
    arr_bits f.Form.globals,
    arr_bits f.Form.pcs,
    Int64.bits_of_float f.Form.rand )

let batch_result_sig (r : Batch.result) =
  ( Option.map form_bits r.Batch.delay,
    arr_bits r.Batch.out_mu,
    arr_bits r.Batch.out_sigma )

(* The tentpole claim: S scenarios through one prepared base amortize the
   shared work (characterize + prepare) that S independent analyses pay S
   times, without changing a single bit of any result.  Bit-identity to
   independent runs and across domain counts is asserted (failwith, like
   run_mc_par), then throughput is recorded vs batch size and domains. *)
let run_batch_scenarios () =
  header "Batch engine: S-scenario throughput on c7552 (Delay mode)";
  record_cores ();
  let nl = Iscas.build "c7552" in
  let t0 = Unix.gettimeofday () in
  let b = Build.characterize nl in
  let characterize_s = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let t0 = Unix.gettimeofday () in
  let base = Batch.prepare b in
  let prepare_s = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  Printf.printf "characterize %.3f s, prepare %.4f s\n" characterize_s
    prepare_s;
  let scenarios = Batch.default_scenarios 16 in
  (* Bit-identity vs 16 fully independent analyses, each with its own
     prepared base (sharing only the characterization, which is
     scenario-independent by construction). *)
  let batch = Batch.run base scenarios in
  Array.iteri
    (fun k s ->
      let single = Batch.run_one (Batch.prepare b) s in
      if batch_result_sig single <> batch_result_sig batch.(k) then
        failwith
          (Printf.sprintf
             "batch_scenarios: scenario %d diverged from its independent run"
             k))
    scenarios;
  Printf.printf "bit-identical to %d independent runs: yes\n"
    (Array.length scenarios);
  (* Throughput vs batch size, pinned to one domain so the recorded
     per-scenario times gate cleanly across machines. *)
  let s16_t = ref nan in
  List.iter
    (fun s_n ->
      let scn = Array.sub scenarios 0 s_n in
      let dt, _ = best_wall (fun () -> Batch.run ~domains:1 base scn) in
      if s_n = 16 then s16_t := dt;
      let per = dt /. float_of_int s_n in
      Printf.printf "S=%-3d %9.4f s total  %9.2f ms/scenario\n" s_n dt
        (1e3 *. per);
      record (Printf.sprintf "batch_c7552_s%d_per_scn_us" s_n) (1e6 *. per))
    [ 1; 4; 16 ];
  (* Domain sweep at S=16: wall time per count, bit-equality asserted
     against the single-domain batch.  The ratios are labelled
     informational in the key itself: on a single-core container they
     are honestly < 1x (domains only add contention), and the label
     keeps downstream tooling from reading the environment as a
     regression.  The enforceable multicore claim is the bit-identity
     assertion here plus check_regression's [_d4_speedup] class for
     benches that opt into it on >= 4-core machines. *)
  let golden = Array.map batch_result_sig batch in
  Printf.printf "%-8s %10s %9s  %s\n" "domains" "wall s" "speedup" "bit-equal";
  let d1_t = ref nan in
  List.iter
    (fun d ->
      let dt, r = best_wall (fun () -> Batch.run ~domains:d base scenarios) in
      if Array.map batch_result_sig r <> golden then
        failwith
          (Printf.sprintf "batch_scenarios: domains=%d diverged from domains=1"
             d);
      if d = 1 then d1_t := dt;
      Printf.printf "%-8d %10.4f %8.2fx  yes\n" d dt (ratio !d1_t dt);
      record (Printf.sprintf "batch_c7552_s16_d%d_s" d) dt;
      if d > 1 then
        record
          (Printf.sprintf "batch_c7552_d%d_speedup_informational" d)
          (ratio !d1_t dt))
    [ 1; 2; 4 ];
  (* The amortization headline: one independent analysis costs
     characterize + prepare + evaluate, the batch pays the shared part
     once for all 16 scenarios. *)
  let run1_t, _ = best_wall (fun () -> Batch.run_one base scenarios.(0)) in
  let indep_per = characterize_s +. prepare_s +. run1_t in
  let batch_per = (characterize_s +. prepare_s +. !s16_t) /. 16.0 in
  let amortized = ratio indep_per batch_per in
  Printf.printf
    "amortized: %.1f ms/scenario batched vs %.1f ms independent -> %.1fx \
     (claim: >= 3x at S=16)\n"
    (1e3 *. batch_per) (1e3 *. indep_per) amortized;
  record "batch_c7552_s16_amortized_speedup" amortized;
  (* Slab footprint: deterministic (capacity-planned per worker), gated
     exactly via the published high-water gauge. *)
  let saved = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  ignore (Batch.run ~domains:1 base (Array.sub scenarios 0 4));
  let slab_peak = Obs.gauge_value (Obs.gauge "batch.slab_bytes_peak") in
  Obs.set_enabled saved;
  Printf.printf "slab peak per worker: %d bytes\n" slab_peak;
  record "batch_c7552_slab_peak_bytes" (float_of_int slab_peak)

(* ------------------------------------------------------------------ *)
(* Batch engine: disabled-observability overhead                       *)
(* ------------------------------------------------------------------ *)

(* Same guarantee and same measurement discipline as run_obs_overhead,
   one level up: a whole Delay-mode batch through the instrumented engine
   with observability off, against an uninstrumented replica of the
   identical per-scenario loop (corner weights, tile factors, recompose,
   forward sweep, output summary) on its own slab.  Median of paired
   per-round ratios; gated via the _frac bound. *)
let run_batch_overhead () =
  header
    "Batch engine: disabled-observability overhead on a c1908 8-scenario \
     batch (median of 15 call-interleaved rounds)";
  let b = Build.characterize (Iscas.build "c1908") in
  let base = Batch.prepare b in
  let scenarios = Batch.default_scenarios 8 in
  let g = b.Build.graph in
  let inputs = g.Ssta_timing.Tgraph.inputs
  and outputs = g.Ssta_timing.Tgraph.outputs in
  let dims = b.Build.basis.Ssta_variation.Basis.dims in
  let m = Ssta_timing.Tgraph.n_edges g
  and nv = Ssta_timing.Tgraph.n_vertices g in
  let fbuf = Form_buf.of_forms dims b.Build.forms in
  let edge_tile = Array.map (fun s -> s.Build.tile) b.Build.sparse in
  let module Grid = Ssta_variation.Grid in
  let module Tile = Ssta_variation.Tile in
  let grid = b.Build.grid in
  let nt = Grid.n_tiles grid in
  let w = float_of_int grid.Grid.nx *. grid.Grid.pitch in
  let h = float_of_int grid.Grid.ny *. grid.Grid.pitch in
  let tile_fx = Array.make nt 0.0 and tile_fy = Array.make nt 0.0 in
  Array.iteri
    (fun i tl ->
      let cx, cy = Tile.center tl in
      tile_fx.(i) <- (cx -. grid.Grid.x0) /. w;
      tile_fy.(i) <- (cy -. grid.Grid.y0) /. h)
    grid.Grid.tiles;
  let corner_w = Array.make (max m 1) 0.0 in
  let tile_f = Array.make (max nt 1) 1.0 in
  let raw_run () =
    let slab =
      Form_buf.slab_create
        (Form_buf.floats_needed dims m + Form_buf.floats_needed dims nv)
    in
    let sforms = Form_buf.create ~slab dims m in
    let ws = H.Propagate.create_workspace ~slab () in
    Array.iter
      (fun (s : Batch.scenario) ->
        H.Corners.corner_weights_into b s.Batch.corner ~into:corner_w;
        (match s.Batch.grid_variant with
        | Batch.Uniform -> Array.fill tile_f 0 nt 1.0
        | Batch.Gradient { gx; gy } ->
            for t = 0 to nt - 1 do
              tile_f.(t) <- 1.0 +. (gx *. tile_fx.(t)) +. (gy *. tile_fy.(t))
            done);
        for e = 0 to m - 1 do
          let alpha =
            s.Batch.delay_scale
            *. Array.unsafe_get tile_f (Array.unsafe_get edge_tile e)
          in
          let beta = alpha *. s.Batch.sigma_scale in
          Form_buf.recompose_into
            ~mean:(alpha *. Array.unsafe_get corner_w e)
            ~beta ~a:fbuf ~ia:e ~dst:sforms ~idst:e
        done;
        H.Propagate.forward_into ws g ~forms:sforms ~sources:inputs;
        let acc = ref None in
        Array.iter
          (fun out ->
            match H.Propagate.ws_form ws out with
            | None -> ()
            | Some f ->
                acc :=
                  (match !acc with
                  | None -> Some f
                  | Some a -> Some (Form.max2 a f)))
          outputs;
        ignore !acc)
      scenarios
  in
  let inst_run () = ignore (Batch.run ~domains:1 base scenarios) in
  let inner = max bench_reps 100 in
  (* Alternate raw/instrumented at single-batch granularity so a CPU
     frequency shift mid-round hits both sides equally; slice-level
     pairing (time all raw, then all instrumented) is fooled by
     throttling that oscillates at the slice period. *)
  let round () =
    let tr = ref 0.0 and ti = ref 0.0 in
    for i = 1 to inner do
      (* Alternating the in-pair order cancels second-runner cache and
         branch-predictor bias within the round. *)
      let raw_first = i land 1 = 0 in
      let f, g =
        if raw_first then (raw_run, inst_run) else (inst_run, raw_run)
      in
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      g ();
      let t2 = Unix.gettimeofday () in
      let a = t1 -. t0 and b = t2 -. t1 in
      if raw_first then begin
        tr := !tr +. a;
        ti := !ti +. b
      end
      else begin
        tr := !tr +. b;
        ti := !ti +. a
      end
    done;
    let n = float_of_int inner in
    (Float.max (!tr /. n) 1e-9, Float.max (!ti /. n) 1e-9)
  in
  let saved = Obs.enabled () in
  Obs.set_enabled false;
  raw_run ();
  inst_run ();
  let rounds = 15 in
  let ratios = Array.make rounds 0.0 in
  let t_raw = ref infinity and t_inst = ref infinity in
  for r = 0 to rounds - 1 do
    let raw, inst = round () in
    ratios.(r) <- inst /. raw;
    t_raw := Float.min !t_raw raw;
    t_inst := Float.min !t_inst inst
  done;
  Obs.set_enabled saved;
  Array.sort compare ratios;
  let frac = ratios.(rounds / 2) -. 1.0 in
  Printf.printf "%-28s %10.2f us/batch\n" "raw replica" (1e6 *. !t_raw);
  Printf.printf "%-28s %10.2f us/batch (%+.2f%%)\n" "engine, obs disabled"
    (1e6 *. !t_inst) (100.0 *. frac);
  record "batch_disabled_overhead_frac" frac

(* ------------------------------------------------------------------ *)
(* Batch engine: ~1M-gate extraction under a bounded footprint         *)
(* ------------------------------------------------------------------ *)

(* Peak resident set (VmHWM) in MB; NaN (recorded as null, skipped by the
   gate) where /proc is unavailable. *)
let rss_peak_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> nan
  | ic ->
      let v = ref nan in
      (try
         while true do
           let l = input_line ic in
           if String.length l > 6 && String.sub l 0 6 = "VmHWM:" then
             Scanf.sscanf
               (String.sub l 6 (String.length l - 6))
               " %f kB"
               (fun k -> v := k /. 1024.0)
         done
       with End_of_file | Scanf.Scan_failure _ | Failure _ -> ());
      close_in ic;
      !v

(* The scale claim behind the slab storage: a ~1M-gate synthetic design
   goes through characterize + auto-tiled criticality + extraction in one
   process whose peak RSS is recorded and gated (with slack - the
   resident peak is the allocator's business, not fully ours).  The
   backward tile is auto-sized from a byte budget, so the criticality
   screen's storage stays bounded no matter the design size; this run
   provisions 2 GB for it (see below), with CRIT_TILE_BUDGET_MB as the
   override. *)
let run_batch_large () =
  header "Batch engine: ~1M-gate extraction under a bounded footprint";
  let t0 = Unix.gettimeofday () in
  let nl = Ssta_circuit.Large.million () in
  let netlist_s = Unix.gettimeofday () -. t0 in
  let gates = Array.length nl.N.gates in
  Printf.printf "netlist: %d gates (%.1f s)\n%!" gates netlist_s;
  let t0 = Unix.gettimeofday () in
  let b = Build.characterize ~cells_per_tile:65536 nl in
  let characterize_s = Unix.gettimeofday () -. t0 in
  let g = b.Build.graph in
  let edges = Ssta_timing.Tgraph.n_edges g in
  let nv = Ssta_timing.Tgraph.n_vertices g in
  let dims = b.Build.basis.Ssta_variation.Basis.dims in
  let stride = dims.Form.n_globals + dims.Form.n_pcs + 2 in
  (* Screen storage budget for the acceptance run: one retained output
     slot costs ~570 MB at this scale (1.05M vertices, stride 65), so
     the user-default 256 MB budget degrades to tile 1 - 32 output
     tiles, each re-running all 32 forward sweeps, which is exactly the
     forward-sweep wall the committed 916 s run sat behind.  The 1M run
     provisions 2 GB of the 4 GB RSS ceiling for the screen slab
     (tile 3, 11 tiles, one third the forward sweeps); an explicit
     CRIT_TILE_BUDGET_MB still wins, since the auto default reads it. *)
  (match Sys.getenv_opt "CRIT_TILE_BUDGET_MB" with
  | Some _ -> H.Criticality.set_tile_auto ()
  | None ->
      H.Criticality.set_tile
        (H.Criticality.auto_tile ~budget_mb:2048 ~n_vertices:nv
           ~n_edges:edges ~stride ()));
  let tile =
    H.Criticality.auto_tile
      ?budget_mb:
        (match Sys.getenv_opt "CRIT_TILE_BUDGET_MB" with
        | Some _ -> None
        | None -> Some 2048)
      ~n_vertices:nv ~n_edges:edges ~stride ()
  in
  Printf.printf
    "characterized: %d edges, %d vertices, %d PCs (%.1f s); backward tile \
     auto=%d\n\
     %!"
    edges nv dims.Form.n_pcs characterize_s tile;
  let t0 = Unix.gettimeofday () in
  let model = H.Extract.extract ~delta b in
  let extract_s = Unix.gettimeofday () -. t0 in
  H.Criticality.set_tile_auto ();
  let model_edges = model.H.Timing_model.stats.H.Timing_model.model_edges in
  let rss = rss_peak_mb () in
  Printf.printf "extract: %d -> %d edges (%.1f s); peak RSS %.0f MB\n" edges
    model_edges extract_s rss;
  record "batch_large_gates" (float_of_int gates);
  record "batch_large_graph_edges" (float_of_int edges);
  record "batch_large_characterize_s" characterize_s;
  record "batch_large_crit_tile" (float_of_int tile);
  record "batch_large_extract_s" extract_s;
  record "batch_large_model_edges" (float_of_int model_edges);
  record "batch_large_peak_rss_mb" rss

(* CI-scale extraction smoke: the same pipeline as run_batch_large on
   the ~100k-gate member of the Large.of_gates family, small enough for
   a pull-request timeout.  Two enforceable claims ride on it: the
   blocked screen engine must beat the per-output reference engine run
   in the same process on the same forms (extract_large_blocked_minspeedup,
   a Floor gate - both operands share the machine, so noise divides
   out), and the end-to-end extraction's peak RSS must hold its
   committed ceiling (extract_large_peak_rss_mb, the _mb class).  The
   engine comparison also re-asserts bit-identity of every result field
   at a scale the test suite's random DAGs cannot reach. *)
let run_extract_large () =
  header "Extraction at scale: ~100k-gate smoke (blocked vs reference)";
  let t0 = Unix.gettimeofday () in
  let nl = Ssta_circuit.Large.of_gates 100_000 in
  let netlist_s = Unix.gettimeofday () -. t0 in
  let gates = Array.length nl.N.gates in
  Printf.printf "netlist: %s, %d gates (%.1f s)\n%!" nl.N.name gates netlist_s;
  let t0 = Unix.gettimeofday () in
  let b = Build.characterize ~cells_per_tile:65536 nl in
  let characterize_s = Unix.gettimeofday () -. t0 in
  let g = b.Build.graph and forms = b.Build.forms in
  let edges = Ssta_timing.Tgraph.n_edges g in
  Printf.printf "characterized: %d edges, %d PCs (%.1f s)\n%!" edges
    b.Build.basis.Ssta_variation.Basis.dims.Form.n_pcs characterize_s;
  H.Criticality.set_tile_auto ();
  let t0 = Unix.gettimeofday () in
  let ref_cr = H.Criticality.compute ~engine:`Reference ~delta g ~forms in
  let reference_s = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  Printf.printf "reference screen: %.2f s\n%!" reference_s;
  let t0 = Unix.gettimeofday () in
  let blk_cr = H.Criticality.compute ~engine:`Blocked ~delta g ~forms in
  let blocked_s = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let equal =
    blk_cr.H.Criticality.keep = ref_cr.H.Criticality.keep
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         blk_cr.H.Criticality.cm ref_cr.H.Criticality.cm
    && blk_cr.H.Criticality.exact_evals = ref_cr.H.Criticality.exact_evals
    && blk_cr.H.Criticality.screened_pairs
       = ref_cr.H.Criticality.screened_pairs
  in
  if not equal then
    failwith "extract_large: blocked engine diverged from the reference";
  Printf.printf "blocked screen:   %.2f s (%.2fx, bit-equal: yes)\n%!"
    blocked_s (ratio reference_s blocked_s);
  let t0 = Unix.gettimeofday () in
  let model = H.Extract.extract ~delta b in
  let extract_s = Unix.gettimeofday () -. t0 in
  let model_edges = model.H.Timing_model.stats.H.Timing_model.model_edges in
  let rss = rss_peak_mb () in
  Printf.printf "extract: %d -> %d edges (%.1f s); peak RSS %.0f MB\n" edges
    model_edges extract_s rss;
  record "extract_large_gates" (float_of_int gates);
  record "extract_large_graph_edges" (float_of_int edges);
  record "extract_large_characterize_s" characterize_s;
  record "extract_large_reference_screen_s" reference_s;
  record "extract_large_blocked_screen_s" blocked_s;
  record "extract_large_blocked_minspeedup" (ratio reference_s blocked_s);
  record "extract_large_screened_pairs"
    (float_of_int blk_cr.H.Criticality.screened_pairs);
  record "extract_large_exact_evals"
    (float_of_int blk_cr.H.Criticality.exact_evals);
  record "extract_large_extract_s" extract_s;
  record "extract_large_model_edges" (float_of_int model_edges);
  record "extract_large_peak_rss_mb" rss

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let dims = { Form.n_globals = 3; n_pcs = 100 } in
  let rng = Ssta_gauss.Rng.create ~seed:1 in
  let mk () =
    Form.make ~mean:(Ssta_gauss.Rng.uniform rng *. 100.0)
      ~globals:
        (Array.init dims.Form.n_globals (fun _ -> Ssta_gauss.Rng.gaussian rng))
      ~pcs:(Array.init dims.Form.n_pcs (fun _ -> Ssta_gauss.Rng.gaussian rng))
      ~rand:(abs_float (Ssta_gauss.Rng.gaussian rng))
  in
  let fa = mk () and fb = mk () in
  (* Flat-buffer mirrors of the same two forms for the kernel ops. *)
  let kbuf = Form_buf.of_forms dims [| fa; fb |] in
  let kdst = Form_buf.of_forms dims [| fa |] in
  let quad = Array.make Form_buf.quad_size 0.0 in
  let c432 = lazy (Build.characterize (Iscas.build "c432")) in
  let tests =
    [
      Test.make ~name:"form_add_dim100"
        (Staged.stage (fun () -> ignore (Form.add fa fb)));
      Test.make ~name:"form_max2_dim100"
        (Staged.stage (fun () -> ignore (Form.max2 fa fb)));
      Test.make ~name:"form_covariance_dim100"
        (Staged.stage (fun () -> ignore (Form.covariance fa fb)));
      Test.make ~name:"buf_add_into_dim100"
        (Staged.stage (fun () ->
             Form_buf.add_into ~a:kbuf ~ia:0 ~b:kbuf ~ib:1 ~dst:kdst ~idst:0));
      Test.make ~name:"buf_max2_into_dim100"
        (Staged.stage (fun () ->
             Form_buf.max2_into ~a:kbuf ~ia:0 ~b:kbuf ~ib:1 ~dst:kdst ~idst:0));
      Test.make ~name:"buf_add_then_max_dim100"
        (Staged.stage (fun () ->
             Form_buf.add_then_max_into ~acc:kdst ~iacc:0 ~a:kbuf ~ia:0 ~b:kbuf
               ~ib:1));
      Test.make ~name:"buf_quad_stats_dim100"
        (Staged.stage (fun () ->
             Form_buf.quad_stats_into ~a:kbuf ~ia:0 ~e:kbuf ~ie:1 ~r:kbuf ~ir:0
               ~m:kdst ~im:0 ~into:quad));
      Test.make ~name:"ssta_forward_c432"
        (Staged.stage (fun () ->
             let b = Lazy.force c432 in
             ignore (H.Propagate.forward_all b.Build.graph ~forms:b.Build.forms)));
      Test.make ~name:"ssta_forward_into_c432"
        (Staged.stage
           (let b = Lazy.force c432 in
            let g = b.Build.graph in
            let bdims = Form.dims b.Build.forms.(0) in
            let fbuf = Form_buf.of_forms bdims b.Build.forms in
            let ws = H.Propagate.create_workspace () in
            fun () ->
              H.Propagate.forward_into ws g ~forms:fbuf
                ~sources:g.Ssta_timing.Tgraph.inputs));
      Test.make ~name:"extract_c432"
        (Staged.stage (fun () ->
             ignore (H.Extract.extract ~delta (Lazy.force c432))));
      Test.make ~name:"pca_36x36"
        (Staged.stage
           (let g =
              Ssta_variation.Grid.make ~x0:0.0 ~y0:0.0 ~width:60.0
                ~height:60.0 ~pitch:10.0
            in
            let basis_input =
              Ssta_variation.Basis.make ~n_params:1
                ~corr:Ssta_variation.Correlation.default ~pitch:10.0
                g.Ssta_variation.Grid.tiles
            in
            let c =
              Ssta_variation.Basis.local_covariance_matrix basis_input
            in
            fun () -> ignore (Ssta_linalg.Pca.of_covariance c)));
      Test.make ~name:"mc_iteration_c432"
        (Staged.stage
           (let b = Lazy.force c432 in
            let ctx = Ssta_mc.Sampler.ctx_of_build b in
            let weights =
              Array.make (Ssta_timing.Tgraph.n_edges b.Build.graph) 0.0
            in
            let mc_rng = Ssta_gauss.Rng.create ~seed:5 in
            fun () ->
              let s = Ssta_mc.Sampler.draw b.Build.basis mc_rng in
              Ssta_mc.Sampler.fill_weights ctx s mc_rng weights;
              ignore (Ssta_timing.Sta.design_delay b.Build.graph ~weights)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) ->
          Printf.printf "%-28s %12.1f ns/run\n" name t;
          record (name ^ "_ns") t
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* hssta serve: replayable request corpus over the in-process engine.

   The daemon's latency claim is about the engine, not the socket: replay
   a deterministic corpus of quantile and what-if requests against
   Serve.handle_line on c7552 and record p50/p99 per request class.  The
   headline gate is serve_incr_p50_minspeedup - the median transient
   what-if answered by incremental re-propagation must be at least
   GATE_MIN_SPEEDUP (5x) faster than the same edit answered by a full
   re-sweep; both sides run in this process on the same corpus, so the
   ratio is machine-independent enough to enforce. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(int_of_float (p *. float_of_int (n - 1)))

let run_serve_corpus () =
  header "serve: request-corpus latency (c7552, in-process engine)";
  record_cores ();
  let module Serve = Ssta_serve.Serve in
  let module Json = Ssta_json.Json in
  let t = Serve.create () in
  let req fields = Json.to_string (Json.Obj fields) in
  let load_resp =
    Serve.handle_line t
      (req [ ("op", Json.Str "load"); ("design", Json.Str "c7552") ])
  in
  (match Json.parse load_resp with
  | Ok j when Json.bool_field ~default:false "ok" j = Ok true -> ()
  | _ -> failwith ("serve_corpus: load failed: " ^ load_resp));
  let n_edges =
    match Json.parse load_resp with
    | Ok j -> (
        match Json.num_field "n_edges" j with
        | Ok v -> int_of_float v
        | Error _ -> 0)
    | Error _ -> 0
  in
  let rng = Ssta_gauss.Rng.create ~seed:1907 in
  (* Late-topological edges have shallow fanout cones - the ECO sweet
     spot the incremental path is built for. *)
  let random_late_edge () =
    (n_edges / 2) + Ssta_gauss.Rng.int rng (n_edges - (n_edges / 2))
  in
  (* Plain quantiles (read the resident arrival) and scenario quantiles
     (re-sweep under a corner) are separate latency classes: mixing them
     would put the corpus median exactly on the boundary between a ~us
     mode and a ~ms mode, where any jitter flips which mode p50 lands
     in.  Homogeneous classes make the percentiles gateable. *)
  let quantiles =
    List.init 64 (fun _ ->
        req [ ("op", Json.Str "quantile"); ("yield", Json.Num 0.99) ])
  in
  let scenarios =
    List.init 64 (fun i ->
        req
          [
            ("op", Json.Str "quantile");
            ( "scenario",
              Json.Obj
                [
                  ( "corner",
                    Json.Str
                      (match i mod 3 with
                      | 0 -> "slow"
                      | 1 -> "fast"
                      | _ -> "nominal") );
                  ( "delay_scale",
                    Json.Num (1.0 +. (0.01 *. float_of_int (i mod 4))) );
                ] );
          ])
  in
  let whatif mode =
    List.init 64 (fun _ ->
        req
          [
            ("op", Json.Str "whatif");
            ( "edits",
              Json.Arr
                [
                  Json.Obj
                    [
                      ("edge", Json.Num (float_of_int (random_late_edge ())));
                      ("scale", Json.Num 1.5);
                    ];
                ] );
            ("mode", Json.Str mode);
          ])
  in
  let whatif_incr = whatif "incremental" and whatif_full = whatif "full" in
  (* Per-request latency is the MINIMUM over a few repetitions: every
     corpus request is idempotent (quantiles are pure, what-ifs are
     transient and roll back), and min-of-N strips scheduler noise that
     would otherwise swamp the p50/p99 gate tolerance on shared runners.
     The first rep is discarded from the min only implicitly - warm-up
     effects (branch predictors, cache) are part of what min filters. *)
  let reps = min 5 bench_reps in
  let time_class reqs =
    Array.of_list
      (List.map
         (fun r ->
           let best = ref infinity in
           for _ = 1 to reps do
             let t0 = Unix.gettimeofday () in
             let resp = Serve.handle_line t r in
             let dt = Unix.gettimeofday () -. t0 in
             (match Json.parse resp with
             | Ok j when Json.bool_field ~default:false "ok" j = Ok true -> ()
             | _ -> failwith ("serve_corpus: request failed: " ^ resp));
             if dt < !best then best := dt
           done;
           !best)
         reqs)
  in
  let t_total0 = Unix.gettimeofday () in
  let lat_q = time_class quantiles in
  let lat_sc = time_class scenarios in
  let lat_incr = time_class whatif_incr in
  let lat_full = time_class whatif_full in
  let total_s = Unix.gettimeofday () -. t_total0 in
  let stats name lat =
    Array.sort compare lat;
    let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
    Printf.printf "%-24s n=%3d  p50 %8.1f us  p99 %8.1f us\n" name
      (Array.length lat) (p50 *. 1e6) (p99 *. 1e6);
    (p50, p99)
  in
  let q50, q99 = stats "quantile (plain)" lat_q in
  let s50, s99 = stats "quantile (scenario)" lat_sc in
  let i50, i99 = stats "whatif incremental" lat_incr in
  let f50, f99 = stats "whatif full" lat_full in
  let n_requests =
    Array.length lat_q + Array.length lat_sc + Array.length lat_incr
    + Array.length lat_full
  in
  let speedup = f50 /. i50 in
  Printf.printf
    "%d requests in %.3f s; incremental p50 %.1fx faster than full re-sweep\n"
    n_requests total_s speedup;
  record "serve_corpus_requests" (float_of_int n_requests);
  record "serve_corpus_total_s" total_s;
  record "serve_quantile_p50_us" (q50 *. 1e6);
  record "serve_quantile_p99_us" (q99 *. 1e6);
  record "serve_scenario_p50_us" (s50 *. 1e6);
  record "serve_scenario_p99_us" (s99 *. 1e6);
  record "serve_whatif_incr_p50_us" (i50 *. 1e6);
  record "serve_whatif_incr_p99_us" (i99 *. 1e6);
  record "serve_whatif_full_p50_us" (f50 *. 1e6);
  record "serve_whatif_full_p99_us" (f99 *. 1e6);
  record "serve_incr_p50_minspeedup" speedup;
  (* ---- durability: clean-path overhead and crash-recovery time ----

     Overhead: the same four request classes through a durable engine
     (cache dir + WAL open, a generous deadline on every request) vs the
     plain engine above.  All corpus requests are transient, so the WAL
     is never written - this prices exactly the always-on machinery
     (deadline parse/arm/check, admission bookkeeping, store presence)
     that every request pays, which the issue bounds at 2%.  Committed
     edits additionally pay one framed append + flush by design.

     Recovery: an engine abandoned mid-session (flushed WAL of one load
     + 16 committed edits, no final checkpoint) is re-created on the
     same directory; Serve.create replays checkpoint + WAL.  Recovery
     deliberately does not re-checkpoint, so each repetition replays the
     identical log. *)
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun e -> rm_rf (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let dir = "_bench_durable" in
  rm_rf dir;
  let td = Serve.create ~cache_dir:dir () in
  let load_d =
    Serve.handle_line td
      (req [ ("op", Json.Str "load"); ("design", Json.Str "c7552") ])
  in
  (match Json.parse load_d with
  | Ok j when Json.bool_field ~default:false "ok" j = Ok true -> ()
  | _ -> failwith ("serve_corpus: durable load failed: " ^ load_d));
  let with_deadline r =
    match Json.parse r with
    | Ok (Json.Obj fields) ->
        Json.to_string (Json.Obj (fields @ [ ("deadline_ms", Json.Num 6.0e4) ]))
    | _ -> r
  in
  (* Paired per request: plain and durable reps interleave inside the
     same loop, so drift (thermal, allocator state, page cache) hits
     both sides equally; the gated number is the median per-request
     ratio of the two min-of-reps. *)
  let one engine r =
    let t0 = Unix.gettimeofday () in
    let resp = Serve.handle_line engine r in
    let dt = Unix.gettimeofday () -. t0 in
    (match Json.parse resp with
    | Ok j when Json.bool_field ~default:false "ok" j = Ok true -> ()
    | _ -> failwith ("serve_corpus: request failed: " ^ resp));
    dt
  in
  let paired_ratios reqs =
    List.map
      (fun r ->
        let rd = with_deadline r in
        let p = ref infinity and d = ref infinity in
        for _ = 1 to reps do
          let dt = one t r in
          if dt < !p then p := dt;
          let dt = one td rd in
          if dt < !d then d := dt
        done;
        !d /. !p)
      reqs
  in
  let ratios =
    Array.of_list
      (List.concat_map paired_ratios
         [ quantiles; scenarios; whatif_incr; whatif_full ])
  in
  Array.sort compare ratios;
  let overhead = Float.max 0.0 (percentile ratios 0.50 -. 1.0) in
  Printf.printf
    "durable clean path: median paired latency ratio %.4f over %d requests \
     (overhead %.2f%%)\n"
    (percentile ratios 0.50) (Array.length ratios) (100.0 *. overhead);
  record "serve_shed_overhead_frac" overhead;
  (* grow the WAL: 16 committed edits, then abandon the engine *)
  for k = 1 to 16 do
    let r =
      Serve.handle_line td
        (req
           [
             ("op", Json.Str "whatif");
             ( "edits",
               Json.Arr
                 [
                   Json.Obj
                     [
                       ("edge", Json.Num (float_of_int (random_late_edge ())));
                       ("scale", Json.Num (1.0 +. (0.01 *. float_of_int k)));
                     ];
                 ] );
             ("commit", Json.Bool true);
           ])
    in
    match Json.parse r with
    | Ok j when Json.bool_field ~default:false "ok" j = Ok true -> ()
    | _ -> failwith ("serve_corpus: commit failed: " ^ r)
  done;
  let rec_lat =
    Array.init 5 (fun _ ->
        let t0 = Unix.gettimeofday () in
        let t2 = Serve.create ~cache_dir:dir () in
        let dt = Unix.gettimeofday () -. t0 in
        if Serve.cache_size t2 < 1 then
          failwith "serve_corpus: recovery lost the model cache";
        dt)
  in
  Array.sort compare rec_lat;
  let recovery_ms = percentile rec_lat 0.50 *. 1000.0 in
  Printf.printf
    "crash recovery (1 load + 16 committed edits): median %.1f ms over %d \
     runs\n"
    recovery_ms (Array.length rec_lat);
  record "serve_recovery_ms" recovery_ms;
  rm_rf dir

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("ablation-delta", run_ablation_delta);
    ("ablation-grid", run_ablation_grid);
    ("ablation-corners", run_ablation_corners);
    ("convergence", run_convergence);
    ("micro", run_micro);
    ("kernels", run_kernels);
    ("criticality_c1908", run_criticality_c1908);
    ("criticality_screen", run_criticality_screen);
    ("extract_c7552", run_extract_c7552);
    ("obs_overhead", run_obs_overhead);
    ("robust_overhead", run_robust_overhead);
    ("mc_par", run_mc_par);
    ("extract_par_c7552", run_extract_par_c7552);
    ("batch_scenarios", run_batch_scenarios);
    ("batch_overhead", run_batch_overhead);
    ("batch_large", run_batch_large);
    ("extract_large", run_extract_large);
    ("serve_corpus", run_serve_corpus);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  match Sys.getenv_opt "BENCH_JSON" with
  | Some path -> write_metrics path
  | None -> ()
