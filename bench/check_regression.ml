(* Bench regression gate: compare a freshly generated BENCH_JSON metrics
   file against the committed baseline and fail (exit 1) on regression.

   Usage: check_regression.exe BASELINE.json CURRENT.json

   Metric classes, decided by the key's final [_component]:
   - [_s] / [_us] / [_ns]: wall-clock - compared with a relative tolerance
     (default +/-30%, override with GATE_TIME_TOL=0.5 etc.) because timing
     is machine- and load-dependent;
   - [_speedup]: a ratio of two timings - informational only, skipped (its
     noise is the product of both operands' noise);
   - [_frac]: an upper-bounded overhead fraction - passes iff the current
     value is at most GATE_OVERHEAD_MAX (default 0.02); the baseline value
     only marks the key as gated.  Used for the observability layer's
     disabled-mode overhead guarantee (obs_disabled_overhead_frac) and the
     robustness layer's clean-path guard overhead guarantee
     (robust_disabled_overhead_frac);
   - [_pairs] / [_evals] / [_edges] / [_tiles]: visit and structure
     counters of the criticality screen - always compared exactly, even
     under GATE_EXACT_TOL (they are pinned by the screen's determinism
     argument, not by the environment);
   - [_mb]: a memory footprint (peak RSS) - compared with the timing
     tolerance plus a 64 MB absolute slack, because the resident peak
     depends on the allocator and the kernel, not just the code;
   - [_cores]: the machine's available core count - recorded so a human
     (and the [_d4_speedup] gate below) can interpret the parallel
     numbers; never compared, the environment is allowed to change;
   - [_informational]: an environment-dependent measurement published for
     humans and trajectory tooling, labelled as such in the key itself
     (mirroring [_cores]) - reported, never gated.  Used for the batch
     domain-sweep ratios, which on a single-core container are honestly
     < 1x (domains only add contention there) and must not be read as
     regressions;
   - [_d4_speedup]: the lib/par multicore claim - when the CURRENT run
     reports [par_available_cores >= 4] the value must reach
     GATE_PAR_MIN_SPEEDUP (default 2.0); on smaller machines the key is
     reported informationally and skipped, and the chosen mode is printed
     either way so CI logs show which one ran;
   - everything else (allocation bytes, screen/eval counts, error
     percentages): deterministic for a pinned code path, compared exactly
     by default.  GATE_EXACT_TOL=0.1 relaxes this to a relative tolerance
     for environments with a different compiler (allocation counts shift
     with inlining decisions across OCaml releases).

   A [null] on either side (a non-finite measurement) skips the key: the
   bench NaN guards are supposed to make this impossible, so a skip is
   reported loudly but does not fail the gate on its own.  A baseline key
   missing from the current run fails it - a silently dropped metric is a
   regression of the bench itself. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let env_tol name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string (String.trim s) with _ -> default)
  | None -> default

(* Parse the flat one-pair-per-line JSON object bench/main.ml emits:
   brace lines, then lines of the form ["key": number,] or ["key": null,].
   Not a general JSON parser on purpose - the gate should fail fast if the
   bench output format drifts. *)
let parse_metrics path =
  let ic = try open_in path with Sys_error m -> die "%s" m in
  let metrics = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] = '"' then begin
         match String.index_opt line ':' with
         | None -> die "%s: malformed metric line: %s" path line
         | Some colon ->
             let key = String.sub line 1 (colon - 2) in
             let v =
               String.trim
                 (String.sub line (colon + 1) (String.length line - colon - 1))
             in
             let v =
               if String.length v > 0 && v.[String.length v - 1] = ',' then
                 String.sub v 0 (String.length v - 1)
               else v
             in
             let value =
               if v = "null" then None
               else
                 match float_of_string_opt v with
                 | Some f -> Some f
                 | None -> die "%s: bad value for %s: %s" path key v
             in
             metrics := (key, value) :: !metrics
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !metrics

type klass =
  | Timing
  | Ratio
  | Exact
  | Bound
  | Count
  | Cores
  | Info
  | Par_speedup
  | Floor
      (* [_minspeedup]: a lower-bounded ratio claim - passes iff the
         current value reaches GATE_MIN_SPEEDUP (default 5.0).  Used for
         the serve daemon's incremental-vs-full re-timing guarantee
         (serve_incr_p50_minspeedup); unlike [_speedup] it is enforced,
         because both operands are measured in the same process on the
         same request corpus, so machine noise divides out. *)

(* Seconds-denominated keys additionally get a small absolute slack: phase
   breakdown spans can be sub-millisecond, where the relative tolerance is
   smaller than gettimeofday jitter.  [_us]/[_ns] keys are per-rep means of
   tight loops and stay purely relative.  [_mb] peaks get a 64 MB slack:
   small-footprint runs sit inside allocator/kernel noise. *)
let classify key =
  (* The d4 speedup is the enforceable multicore claim; other domain
     counts stay informational ratios (their suffix is plain _speedup). *)
  if String.ends_with ~suffix:"_d4_speedup" key then (Par_speedup, 0.0)
  else
    match String.rindex_opt key '_' with
    | None -> (Exact, 0.0)
    | Some i -> (
        match String.sub key (i + 1) (String.length key - i - 1) with
        | "s" -> (Timing, 0.005)
        (* [_ms] keys are one-shot phase spans (daemon crash recovery):
           scheduler jitter on a single measurement easily exceeds the
           relative band near a few ms, hence the absolute slack. *)
        | "ms" -> (Timing, 5.0)
        | "us" | "ns" -> (Timing, 0.0)
        | "mb" -> (Timing, 64.0)
        | "speedup" -> (Ratio, 0.0)
        | "minspeedup" -> (Floor, 0.0)
        | "frac" -> (Bound, 0.0)
        | "cores" -> (Cores, 0.0)
        | "informational" -> (Info, 0.0)
        (* Visit/structure counters of the criticality screen: pinned by
           the determinism argument (chunk layout a function of port counts
           only), so they are compared exactly even under GATE_EXACT_TOL -
           a drifted count means the screen's visit semantics changed, not
           that the environment did. *)
        | "pairs" | "evals" | "edges" | "tiles" -> (Count, 0.0)
        | _ -> (Exact, 0.0))

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ -> die "usage: check_regression BASELINE.json CURRENT.json"
  in
  let time_tol = env_tol "GATE_TIME_TOL" 0.30 in
  let exact_tol = env_tol "GATE_EXACT_TOL" 0.0 in
  let overhead_max = env_tol "GATE_OVERHEAD_MAX" 0.02 in
  let min_speedup = env_tol "GATE_PAR_MIN_SPEEDUP" 2.0 in
  let floor_speedup = env_tol "GATE_MIN_SPEEDUP" 5.0 in
  let baseline = parse_metrics baseline_path in
  let current = parse_metrics current_path in
  (* The multicore-speedup gate keys off the CURRENT machine: the baseline
     may have been recorded on different hardware, but the claim under
     test ("lib/par reaches 2x on >= 4 cores") is about this run. *)
  let avail_cores =
    match List.assoc_opt "par_available_cores" current with
    | Some (Some c) -> c
    | _ -> 1.0
  in
  let par_enforcing = avail_cores >= 4.0 in
  let par_seen = ref false in
  let failures = ref 0 and checked = ref 0 and skipped = ref 0 in
  List.iter
    (fun (key, base) ->
      match (classify key, base, List.assoc_opt key current) with
      | _, _, None ->
          incr failures;
          Printf.printf "FAIL %-36s missing from current run\n" key
      | (Ratio, _), _, _ -> incr skipped
      | _, None, _ | _, _, Some None ->
          incr skipped;
          Printf.printf "SKIP %-36s null measurement\n" key
      | (Cores, _), Some b, Some (Some c) ->
          incr skipped;
          Printf.printf
            "INFO %-36s baseline %.0f, current %.0f (environment, never \
             gated)\n"
            key b c
      | (Info, _), Some b, Some (Some c) ->
          incr skipped;
          Printf.printf
            "INFO %-36s baseline %.3g, current %.3g (informational, never \
             gated)\n"
            key b c
      | (Par_speedup, _), Some _, Some (Some c) ->
          par_seen := true;
          if par_enforcing then begin
            incr checked;
            if c >= min_speedup then ()
            else begin
              incr failures;
              Printf.printf
                "FAIL %-36s %.2fx below GATE_PAR_MIN_SPEEDUP %.2fx on a \
                 %.0f-core machine\n"
                key c min_speedup avail_cores
            end
          end
          else begin
            incr skipped;
            Printf.printf "INFO %-36s %.2fx (informational: %.0f core(s) < 4)\n"
              key c avail_cores
          end
      | (Floor, _), Some _, Some (Some c) ->
          incr checked;
          if c >= floor_speedup then ()
          else begin
            incr failures;
            Printf.printf
              "FAIL %-36s %.2fx below GATE_MIN_SPEEDUP %.2fx\n" key c
              floor_speedup
          end
      | (Bound, _), Some _, Some (Some c) ->
          incr checked;
          if c <= overhead_max then ()
          else begin
            incr failures;
            Printf.printf "FAIL %-36s %.6g exceeds bound %.6g\n" key c
              overhead_max
          end
      | (klass, slack), Some b, Some (Some c) ->
          incr checked;
          let tol =
            match klass with
            | Timing -> time_tol
            | Count -> 0.0
            | _ -> exact_tol
          in
          let ok =
            if tol = 0.0 then c = b
            else abs_float (c -. b) <= Float.max (tol *. abs_float b) slack
          in
          if ok then ()
          else begin
            incr failures;
            Printf.printf "FAIL %-36s baseline %.6g, current %.6g (%+.1f%%)\n"
              key b c
              (100.0 *. (c -. b) /. (if b = 0.0 then 1.0 else abs_float b))
          end)
    baseline;
  if !par_seen then
    Printf.printf
      "par speedup gate: %s (par_available_cores=%.0f, \
       GATE_PAR_MIN_SPEEDUP=%.2fx)\n"
      (if par_enforcing then "ENFORCING" else "informational")
      avail_cores min_speedup;
  Printf.printf "bench gate: %d checked, %d skipped, %d failed (time tol \
                 +/-%.0f%%, exact tol +/-%.0f%%, overhead bound %.0f%%)\n"
    !checked !skipped !failures (100.0 *. time_tol) (100.0 *. exact_tol)
    (100.0 *. overhead_max);
  exit (if !failures > 0 then 1 else 0)
